#include "chebyshev.h"

#include <cmath>

#include "common/logging.h"

namespace anaheim {

std::vector<double>
chebyshevFit(const std::function<double(double)> &f, size_t degree)
{
    const size_t m = degree + 1;
    std::vector<double> samples(m);
    for (size_t j = 0; j < m; ++j) {
        const double theta = M_PI * (static_cast<double>(j) + 0.5) / m;
        samples[j] = f(std::cos(theta));
    }
    std::vector<double> coeffs(m);
    for (size_t k = 0; k < m; ++k) {
        double sum = 0.0;
        for (size_t j = 0; j < m; ++j) {
            const double theta = M_PI * (static_cast<double>(j) + 0.5) / m;
            sum += samples[j] * std::cos(k * theta);
        }
        coeffs[k] = (k == 0 ? 1.0 : 2.0) * sum / m;
    }
    return coeffs;
}

double
chebyshevEvalPlain(const std::vector<double> &coeffs, double x)
{
    // Clenshaw recurrence.
    double b1 = 0.0, b2 = 0.0;
    for (size_t k = coeffs.size(); k-- > 1;) {
        const double b0 = coeffs[k] + 2.0 * x * b1 - b2;
        b2 = b1;
        b1 = b0;
    }
    return coeffs[0] + x * b1 - b2;
}

size_t
ChebyshevEvaluator::depthForDegree(size_t degree)
{
    size_t depth = 1; // base-case plaintext multiplication
    size_t m = 1;
    while (m <= degree) {
        m <<= 1;
        ++depth;
    }
    return depth;
}

Ciphertext
ChebyshevEvaluator::doubleIndex(const Ciphertext &tk) const
{
    // T_{2k} = 2 T_k^2 - 1.
    Ciphertext sq = evaluator_.rescale(evaluator_.square(tk, relinKey_));
    sq = evaluator_.mulInteger(sq, 2);
    return evaluator_.addConst(sq, {-1.0, 0.0});
}

ChebyshevEvaluator::BabyTable
ChebyshevEvaluator::computeBabies(const Ciphertext &x, size_t count) const
{
    BabyTable babies;
    babies.emplace(1, x);
    for (size_t k = 2; k <= count; ++k) {
        if (k % 2 == 0) {
            babies.emplace(k, doubleIndex(babies.at(k / 2)));
        } else {
            // T_{i+j} = 2 T_i T_j - T_{i-j} with i = (k+1)/2, j = k - i.
            const size_t i = (k + 1) / 2;
            const size_t j = k - i;
            Ciphertext prod = evaluator_.rescale(
                evaluator_.multiply(babies.at(i), babies.at(j), relinKey_));
            prod = evaluator_.mulInteger(prod, 2);
            babies.emplace(k, evaluator_.sub(prod, babies.at(i - j)));
        }
    }
    return babies;
}

Ciphertext
ChebyshevEvaluator::linearCombination(const std::vector<double> &coeffs,
                                      const BabyTable &babies) const
{
    // sum_k coeffs[k] T_k with the T_0 term folded in as a constant.
    // Work at the deepest baby level so every PMULT result aligns.
    size_t level = babies.at(1).level;
    for (const auto &[k, ct] : babies) {
        (void)k;
        level = std::min(level, ct.level);
    }

    // Target scale every term lands on exactly: choosing each
    // plaintext's scale per baby compensates that the babies carry
    // slightly different rescale histories, so the additions below are
    // exact and never trigger level-consuming scale adjustment.
    const double nominal =
        std::ldexp(1.0, evaluator_.context().params().logScale);
    const double qDrop = static_cast<double>(
        evaluator_.context().qBasis().prime(level - 1));

    Ciphertext acc;
    bool first = true;
    for (size_t k = 1; k < coeffs.size(); ++k) {
        if (std::abs(coeffs[k]) < 1e-12)
            continue;
        const Ciphertext baby =
            evaluator_.dropToLevel(babies.at(k), level);
        const double ptScale = nominal * qDrop / baby.scale;
        const std::vector<std::complex<double>> constant(
            encoder_.slots(), {coeffs[k], 0.0});
        const Plaintext pt = encoder_.encode(constant, level, ptScale);
        Ciphertext term =
            evaluator_.rescale(evaluator_.mulPlain(baby, pt));
        term.scale = nominal; // exact by construction of ptScale
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = evaluator_.add(acc, term);
        }
    }
    if (first) {
        // Degenerate all-zero series: return an encryption-shaped zero.
        Ciphertext zero = evaluator_.dropToLevel(babies.at(1), level);
        zero = evaluator_.sub(zero, zero);
        acc = evaluator_.rescale(
            evaluator_.mulConst(zero, {1.0, 0.0}));
    }
    if (coeffs[0] != 0.0)
        acc = evaluator_.addConst(acc, {coeffs[0], 0.0});
    return acc;
}

Ciphertext
ChebyshevEvaluator::recurse(const std::vector<double> &coeffs, size_t m,
                            const BabyTable &babies,
                            const std::map<size_t, Ciphertext> &giants,
                            size_t babyBound) const
{
    if (coeffs.size() <= babyBound + 1)
        return linearCombination(coeffs, babies);

    // Split f = T_m * g + h using T_{m+i} = 2 T_m T_i - T_{m-i}.
    ANAHEIM_ASSERT(coeffs.size() <= 2 * m, "split point too small");
    std::vector<double> g(m, 0.0);
    std::vector<double> h(coeffs.begin(), coeffs.begin() + m);
    g[0] = coeffs.size() > m ? coeffs[m] : 0.0;
    for (size_t i = 1; m + i < coeffs.size(); ++i) {
        g[i] = 2.0 * coeffs[m + i];
        h[m - i] -= coeffs[m + i];
    }

    const Ciphertext gEval = recurse(g, m / 2, babies, giants, babyBound);
    const Ciphertext hEval = recurse(h, m / 2, babies, giants, babyBound);
    const auto it = giants.find(m);
    ANAHEIM_ASSERT(it != giants.end(), "missing giant step T_", m);
    Ciphertext result = evaluator_.rescale(
        evaluator_.multiply(gEval, it->second, relinKey_));
    return evaluator_.add(result, hEval);
}

Ciphertext
ChebyshevEvaluator::evaluate(const Ciphertext &x,
                             const std::vector<double> &coeffs) const
{
    ANAHEIM_ASSERT(!coeffs.empty(), "empty Chebyshev series");
    const size_t degree = coeffs.size() - 1;
    if (degree == 0) {
        Ciphertext out = evaluator_.rescale(
            evaluator_.mulConst(x, {0.0, 0.0}));
        return evaluator_.addConst(out, {coeffs[0], 0.0});
    }

    // Baby bound ~ sqrt(degree), rounded to a power of two.
    size_t babyBound = 1;
    while (babyBound * babyBound < degree + 1)
        babyBound <<= 1;

    const BabyTable babies = computeBabies(x, std::min(babyBound, degree));

    // Giant steps T_{babyBound * 2^j} up to the split point.
    std::map<size_t, Ciphertext> giants;
    if (degree > babyBound) {
        size_t idx = babyBound;
        Ciphertext current = babies.at(babyBound);
        giants.emplace(idx, current);
        while (idx * 2 <= degree) {
            idx *= 2;
            current = doubleIndex(current);
            giants.emplace(idx, current);
        }
    }

    // Outermost split point: largest power-of-two multiple of babyBound
    // not exceeding the degree.
    size_t m = babyBound;
    while (2 * m <= degree)
        m *= 2;
    return recurse(coeffs, m, babies, giants, babyBound);
}

} // namespace anaheim

#include "dft.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace anaheim {

DftPlan::DftPlan(size_t slots, size_t fftIter)
    : slots_(slots), fftIter_(fftIter)
{
    ANAHEIM_ASSERT((slots & (slots - 1)) == 0 && slots >= 2,
                   "slots must be a power of two");
    size_t logN = 0;
    while ((size_t{1} << logN) < slots)
        ++logN;
    ANAHEIM_ASSERT(fftIter >= 1 && fftIter <= logN,
                   "fftIter out of range for ", slots, " slots");

    const size_t m = 4 * slots; // ring 2N with N = 2 * slots
    rotGroup_.resize(slots);
    size_t fivePow = 1;
    for (size_t j = 0; j < slots; ++j) {
        rotGroup_[j] = fivePow;
        fivePow = fivePow * 5 % m;
    }
    ksiPows_.resize(m + 1);
    for (size_t k = 0; k <= m; ++k) {
        const double angle = 2.0 * M_PI * k / static_cast<double>(m);
        ksiPows_[k] = {std::cos(angle), std::sin(angle)};
    }
}

void
DftPlan::forwardStage(std::vector<Complex> &vals, size_t len) const
{
    const size_t m = 4 * slots_;
    const size_t lenh = len >> 1;
    const size_t lenq = len << 2;
    // Butterfly blocks touch disjoint slices [i, i + len); one task per
    // block (nested calls from materialize() run inline).
    parallelFor(0, slots_ / len, [&](size_t block) {
        const size_t i = block * len;
        for (size_t j = 0; j < lenh; ++j) {
            const size_t idx = (rotGroup_[j] % lenq) * (m / lenq);
            const Complex u = vals[i + j];
            const Complex v = vals[i + j + lenh] * ksiPows_[idx];
            vals[i + j] = u + v;
            vals[i + j + lenh] = u - v;
        }
    });
}

void
DftPlan::inverseStage(std::vector<Complex> &vals, size_t len) const
{
    const size_t m = 4 * slots_;
    const size_t lenh = len >> 1;
    const size_t lenq = len << 2;
    parallelFor(0, slots_ / len, [&](size_t block) {
        const size_t i = block * len;
        for (size_t j = 0; j < lenh; ++j) {
            const size_t idx = (lenq - (rotGroup_[j] % lenq)) * (m / lenq);
            const Complex u = vals[i + j] + vals[i + j + lenh];
            Complex v = vals[i + j] - vals[i + j + lenh];
            v *= ksiPows_[idx];
            vals[i + j] = 0.5 * u;
            vals[i + j + lenh] = 0.5 * v;
        }
    });
}

DiagMatrix
DftPlan::materialize(const std::vector<size_t> &stageLens, bool forward,
                     Complex scale) const
{
    // Columns are independent (each propagates one unit vector through
    // the stages into its own scratch buffer), so they parallelize with
    // a per-column grain; the per-column arithmetic is exactly the
    // serial sequence, so results are bitwise identical.
    std::vector<std::vector<Complex>> dense(
        slots_, std::vector<Complex>(slots_, 0.0));
    parallelFor(0, slots_, [&](size_t c) {
        std::vector<Complex> column(slots_, Complex{0.0, 0.0});
        column[c] = scale;
        for (size_t len : stageLens) {
            if (forward)
                forwardStage(column, len);
            else
                inverseStage(column, len);
        }
        for (size_t r = 0; r < slots_; ++r)
            dense[r][c] = column[r];
    });
    return DiagMatrix::fromDense(dense);
}

std::vector<std::vector<size_t>>
DftPlan::groupStages(const std::vector<size_t> &stageLens) const
{
    // Split into fftIter contiguous groups of near-equal size.
    std::vector<std::vector<size_t>> groups(fftIter_);
    const size_t total = stageLens.size();
    size_t next = 0;
    for (size_t g = 0; g < fftIter_; ++g) {
        const size_t count =
            (total * (g + 1)) / fftIter_ - (total * g) / fftIter_;
        for (size_t k = 0; k < count; ++k)
            groups[g].push_back(stageLens[next++]);
    }
    return groups;
}

std::vector<DiagMatrix>
DftPlan::coeffToSlotFactors(Complex extraScale) const
{
    // Inverse stages applied from len = n down to len = 2. The 1/2
    // scaling folded into inverseStage supplies the overall 1/n.
    std::vector<size_t> lens;
    for (size_t len = slots_; len >= 2; len >>= 1)
        lens.push_back(len);
    const auto groups = groupStages(lens);
    // Spread extraScale across factors to keep plaintext magnitudes
    // balanced (each factor gets the fftIter-th root).
    const Complex perFactor =
        std::pow(extraScale, 1.0 / static_cast<double>(fftIter_));
    std::vector<DiagMatrix> factors;
    factors.reserve(groups.size());
    for (const auto &group : groups)
        factors.push_back(materialize(group, false, perFactor));
    return factors;
}

std::vector<DiagMatrix>
DftPlan::slotToCoeffFactors(Complex extraScale) const
{
    std::vector<size_t> lens;
    for (size_t len = 2; len <= slots_; len <<= 1)
        lens.push_back(len);
    const auto groups = groupStages(lens);
    const Complex perFactor =
        std::pow(extraScale, 1.0 / static_cast<double>(fftIter_));
    std::vector<DiagMatrix> factors;
    factors.reserve(groups.size());
    for (const auto &group : groups)
        factors.push_back(materialize(group, true, perFactor));
    return factors;
}

std::vector<DftPlan::Complex>
DftPlan::applyCoeffToSlot(std::vector<Complex> vals) const
{
    ANAHEIM_ASSERT(vals.size() == slots_, "size mismatch");
    for (size_t len = slots_; len >= 2; len >>= 1)
        inverseStage(vals, len);
    return vals;
}

std::vector<DftPlan::Complex>
DftPlan::applySlotToCoeff(std::vector<Complex> vals) const
{
    ANAHEIM_ASSERT(vals.size() == slots_, "size mismatch");
    for (size_t len = 2; len <= slots_; len <<= 1)
        forwardStage(vals, len);
    return vals;
}

} // namespace anaheim

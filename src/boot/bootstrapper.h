/**
 * @file
 * CKKS bootstrapping (§II-C): ModRaise, CoeffToSlot, EvalMod (approximate
 * modular reduction via a scaled sine), and SlotToCoeff.
 *
 * The linear transforms use the factored-DFT plan (dft.h) with a
 * configurable fftIter and the BSGS hoisted linear-transform algorithm,
 * matching the configuration the paper evaluates. The scaled-sine step
 * evaluates cos((2*pi*a*v - pi/2) / 2^r) by Chebyshev interpolation
 * followed by r double-angle steps, yielding sin(2*pi*t).
 *
 * Substitution note (DESIGN.md): the paper's Boot workload uses
 * sparse-secret encapsulation [9]; this implementation uses a sparse
 * secret directly (Hamming weight H_s = 2^5 per Table IV), which
 * exercises the same op sequence.
 */

#ifndef ANAHEIM_BOOT_BOOTSTRAPPER_H
#define ANAHEIM_BOOT_BOOTSTRAPPER_H

#include "chebyshev.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "dft.h"
#include "lintrans/lintrans.h"

namespace anaheim {

struct BootstrapConfig {
    /** Number of factors per DFT (CoeffToSlot and SlotToCoeff each). */
    size_t fftIter = 2;
    /** Chebyshev degree of the cosine approximant. */
    size_t sineDegree = 63;
    /** Double-angle iterations r. */
    size_t doubleAngles = 3;
    /** Bound K on the modulus-multiple I after ModRaise; the interval
     *  scaling a is the next power of two above K. */
    double kBound = 12.0;
};

class Bootstrapper
{
  public:
    /**
     * Prepares DFT factors, the sine approximant and every evaluation
     * key bootstrapping needs (rotations, conjugation, relinearization).
     */
    Bootstrapper(const CkksContext &context, const CkksEncoder &encoder,
                 const CkksEvaluator &evaluator, KeyGenerator &keygen,
                 const BootstrapConfig &config = {});

    /**
     * Refresh a ciphertext: consume it at (any) level and return an
     * equivalent encryption at `outputLevel()` with its scale restored.
     */
    Ciphertext bootstrap(const Ciphertext &ct) const;

    /** Level of bootstrap() outputs given this configuration. */
    size_t outputLevel() const { return outputLevel_; }

    /** Levels consumed by each phase (for the level schedule / traces).*/
    size_t coeffToSlotDepth() const { return config_.fftIter; }
    size_t evalModDepth() const;
    size_t slotToCoeffDepth() const { return config_.fftIter; }

    const BootstrapConfig &config() const { return config_; }

    /** ModRaise alone (exposed for tests): re-express a level-1
     *  ciphertext over the full modulus. */
    Ciphertext modRaise(const Ciphertext &ct) const;

  private:
    Ciphertext coeffToSlot(const Ciphertext &ct) const;
    Ciphertext evalMod(const Ciphertext &ct) const;
    Ciphertext slotToCoeff(const Ciphertext &ct) const;

    const CkksContext &context_;
    const CkksEncoder &encoder_;
    const CkksEvaluator &evaluator_;
    BootstrapConfig config_;
    double intervalScale_; // a = 2^ceil(log2(K+1))
    std::vector<DiagMatrix> ctsFactors_;
    std::vector<DiagMatrix> stcFactors_;
    std::vector<double> sineCoeffs_;
    EvalKey relinKey_;
    GaloisKeys galoisKeys_;
    LinearTransformer transformer_;
    ChebyshevEvaluator chebyshev_;
    size_t outputLevel_ = 0;
};

} // namespace anaheim

#endif // ANAHEIM_BOOT_BOOTSTRAPPER_H

/**
 * @file
 * Arbitrary polynomial evaluation on ciphertexts — one of the
 * "optimized routines for advanced features" the Anaheim software
 * framework exposes (§V-C), and the building block of encrypted
 * activation functions (ReLU/sigmoid approximations) and comparisons
 * (the Sort workload).
 *
 * Monomial-basis coefficients are converted to the Chebyshev basis and
 * evaluated with the depth-optimal BSGS routine of chebyshev.h; inputs
 * must lie in [-1, 1] (use scaleToUnit for other ranges).
 */

#ifndef ANAHEIM_BOOT_POLYEVAL_H
#define ANAHEIM_BOOT_POLYEVAL_H

#include <functional>
#include <vector>

#include "chebyshev.h"

namespace anaheim {

/**
 * Convert monomial coefficients (c[0] + c[1] x + ...) into Chebyshev
 * coefficients over [-1, 1]. Exact (no sampling).
 */
std::vector<double> monomialToChebyshev(const std::vector<double> &coeffs);

class PolynomialEvaluator
{
  public:
    PolynomialEvaluator(const CkksEvaluator &evaluator,
                        const CkksEncoder &encoder, const EvalKey &relinKey)
        : chebyshev_(evaluator, encoder, relinKey)
    {
    }

    /** Evaluate sum c[i] * x^i on slot values in [-1, 1]. */
    Ciphertext evaluate(const Ciphertext &x,
                        const std::vector<double> &monomialCoeffs) const;

    /**
     * Evaluate an arbitrary smooth function by Chebyshev interpolation
     * of the given degree (slot values in [-1, 1]).
     */
    Ciphertext evaluateFunction(const Ciphertext &x,
                                const std::function<double(double)> &f,
                                size_t degree) const;

  private:
    ChebyshevEvaluator chebyshev_;
};

} // namespace anaheim

#endif // ANAHEIM_BOOT_POLYEVAL_H

/**
 * @file
 * Chebyshev interpolation and its homomorphic evaluation, used by
 * EvalMod (the approximate modular reduction inside bootstrapping) and
 * exposed as the library's arbitrary-polynomial-evaluation routine.
 *
 * Evaluation uses the baby-step/giant-step Paterson–Stockmeyer recursion
 * over the Chebyshev basis (T_{m+i} = 2 T_m T_i - T_{m-i}), giving
 * multiplicative depth ~log2(degree).
 */

#ifndef ANAHEIM_BOOT_CHEBYSHEV_H
#define ANAHEIM_BOOT_CHEBYSHEV_H

#include <functional>
#include <map>
#include <vector>

#include "ckks/evaluator.h"

namespace anaheim {

/**
 * Chebyshev interpolation coefficients of f on [-1, 1] up to `degree`
 * (inclusive), via the discrete cosine transform at Chebyshev nodes.
 */
std::vector<double> chebyshevFit(const std::function<double(double)> &f,
                                 size_t degree);

/** Reference (plain) evaluation of a Chebyshev series at x in [-1,1]. */
double chebyshevEvalPlain(const std::vector<double> &coeffs, double x);

class ChebyshevEvaluator
{
  public:
    ChebyshevEvaluator(const CkksEvaluator &evaluator,
                       const CkksEncoder &encoder, const EvalKey &relinKey)
        : evaluator_(evaluator), encoder_(encoder), relinKey_(relinKey)
    {
    }

    /**
     * Homomorphically evaluate the Chebyshev series on a ciphertext
     * whose slot values lie in [-1, 1]. Consumes ~log2(degree) + 1
     * levels. The result is rescaled to scale ~Delta.
     */
    Ciphertext evaluate(const Ciphertext &x,
                        const std::vector<double> &coeffs) const;

    /** Multiplicative depth `evaluate` consumes for this degree. */
    static size_t depthForDegree(size_t degree);

  private:
    using BabyTable = std::map<size_t, Ciphertext>;

    /** Compute Chebyshev polynomials T_1..T_count of the input. */
    BabyTable computeBabies(const Ciphertext &x, size_t count) const;

    /** T_{2k} from T_k: 2 T_k^2 - 1 (also used for giant steps). */
    Ciphertext doubleIndex(const Ciphertext &tk) const;

    Ciphertext recurse(const std::vector<double> &coeffs, size_t m,
                       const BabyTable &babies,
                       const std::map<size_t, Ciphertext> &giants,
                       size_t babyBound) const;

    Ciphertext linearCombination(const std::vector<double> &coeffs,
                                 const BabyTable &babies) const;

    const CkksEvaluator &evaluator_;
    const CkksEncoder &encoder_;
    const EvalKey &relinKey_;
};

} // namespace anaheim

#endif // ANAHEIM_BOOT_CHEBYSHEV_H

/**
 * @file
 * Factored homomorphic DFT plans for CoeffToSlot / SlotToCoeff [17].
 *
 * The encoder's special FFT is `E = S_n * ... * S_2 * B` (butterfly
 * stages after a bit-reversal B). Because the ops between CoeffToSlot
 * and SlotToCoeff (conjugation split and EvalMod) are all slot-wise,
 * the bit reversal can be dropped from BOTH transforms: CoeffToSlot
 * evaluates B * E^{-1} = S_2^{-1} * ... * S_n^{-1} and SlotToCoeff
 * evaluates E * B^{-1} = S_n * ... * S_2 — pure products of 3-diagonal
 * butterfly stages, with no permutation factor anywhere.
 *
 * Stages are grouped into `fftIter` sparse factors (MAD [2]); each group
 * matrix is materialized numerically from the stage operators, which
 * keeps the factorization exactly consistent with the encoder.
 */

#ifndef ANAHEIM_BOOT_DFT_H
#define ANAHEIM_BOOT_DFT_H

#include <complex>
#include <vector>

#include "lintrans/diagmatrix.h"

namespace anaheim {

class DftPlan
{
  public:
    using Complex = std::complex<double>;

    /**
     * @param slots   Slot count n = N/2 (power of two).
     * @param fftIter Number of factors each transform is split into.
     */
    DftPlan(size_t slots, size_t fftIter);

    size_t slots() const { return slots_; }
    size_t fftIter() const { return fftIter_; }

    /**
     * CoeffToSlot factors, to be applied in returned order. The product
     * equals B * E^{-1} scaled by `extraScale` (the 1/n FFT scaling is
     * already included).
     */
    std::vector<DiagMatrix> coeffToSlotFactors(Complex extraScale) const;

    /**
     * SlotToCoeff factors, applied in returned order; product equals
     * E * B scaled by `extraScale`.
     */
    std::vector<DiagMatrix> slotToCoeffFactors(Complex extraScale) const;

    /** Reference full-matrix application, for tests. */
    std::vector<Complex> applyCoeffToSlot(std::vector<Complex> vals) const;
    std::vector<Complex> applySlotToCoeff(std::vector<Complex> vals) const;

  private:
    /** One forward butterfly stage of block length `len`, in place. */
    void forwardStage(std::vector<Complex> &vals, size_t len) const;
    /** Inverse of forwardStage. */
    void inverseStage(std::vector<Complex> &vals, size_t len) const;

    /** Materialize the composition of stages [first, last) of the given
     *  direction into a diagonal matrix. */
    DiagMatrix materialize(const std::vector<size_t> &stageLens,
                           bool forward, Complex scale) const;

    /** Split the log2(n) stages into fftIter contiguous groups. */
    std::vector<std::vector<size_t>> groupStages(
        const std::vector<size_t> &stageLens) const;

    size_t slots_;
    size_t fftIter_;
    std::vector<size_t> rotGroup_;
    std::vector<Complex> ksiPows_;
};

} // namespace anaheim

#endif // ANAHEIM_BOOT_DFT_H

#include "bootstrapper.h"

#include <cmath>
#include <set>

#include "common/logging.h"
#include "obs/trace.h"
#include "math/modarith.h"

namespace anaheim {

namespace {

/** Multiply a ciphertext by the exact monomial X^power (slot-wise
 *  multiplication by a root of unity; free of noise, level and scale). */
Ciphertext
mulMonomial(const Ciphertext &ct, size_t power)
{
    Ciphertext out = ct;
    out.b.mulMonomialEq(power);
    out.a.mulMonomialEq(power);
    return out;
}

} // namespace

Bootstrapper::Bootstrapper(const CkksContext &context,
                           const CkksEncoder &encoder,
                           const CkksEvaluator &evaluator,
                           KeyGenerator &keygen,
                           const BootstrapConfig &config)
    : context_(context), encoder_(encoder), evaluator_(evaluator),
      config_(config), transformer_(context, encoder, evaluator),
      chebyshev_(evaluator, encoder, relinKey_)
{
    const size_t slots = encoder_.slots();
    const double q0 =
        static_cast<double>(context_.qBasis().prime(0));
    const double delta = std::ldexp(1.0, context_.params().logScale);

    intervalScale_ = 2.0;
    while (intervalScale_ < config_.kBound + 1.0)
        intervalScale_ *= 2.0;

    // DFT factors. CoeffToSlot folds delta / (q0 * a) so post-transform
    // slots are (m + q0*I) / (q0*a) in [-1, 1] at tracked scale ~delta;
    // the 0.5 of the conjugation split is folded in as well.
    // SlotToCoeff folds q0 / delta to restore the message magnitude.
    const DftPlan plan(slots, config_.fftIter);
    ctsFactors_ = plan.coeffToSlotFactors(
        {0.5 * delta / (q0 * intervalScale_), 0.0});
    stcFactors_ = plan.slotToCoeffFactors({q0 / delta, 0.0});

    // Scaled sine: F(v) = cos((2*pi*a*v - pi/2) / 2^r); after r
    // double-angle steps this becomes sin(2*pi*a*v).
    const double a = intervalScale_;
    const double r = std::ldexp(1.0, config_.doubleAngles);
    sineCoeffs_ = chebyshevFit(
        [a, r](double v) {
            return std::cos((2.0 * M_PI * a * v - M_PI / 2.0) / r);
        },
        config_.sineDegree);

    // Key material: relinearization + every rotation either transform
    // needs + conjugation.
    relinKey_ = keygen.makeRelinKey();
    std::set<int> rotations;
    for (const auto &factor : ctsFactors_) {
        for (int rot : LinearTransformer::requiredRotations(
                 factor, LinTransAlgorithm::BsgsHoisting))
            rotations.insert(rot);
    }
    for (const auto &factor : stcFactors_) {
        for (int rot : LinearTransformer::requiredRotations(
                 factor, LinTransAlgorithm::BsgsHoisting))
            rotations.insert(rot);
    }
    galoisKeys_ = keygen.makeGaloisKeys(
        std::vector<int>(rotations.begin(), rotations.end()), true);

    const size_t consumed =
        coeffToSlotDepth() + evalModDepth() + slotToCoeffDepth();
    ANAHEIM_ASSERT(context_.maxLevel() > consumed + 1,
                   "not enough levels for bootstrapping: need > ",
                   consumed + 1, ", have ", context_.maxLevel());
    outputLevel_ = context_.maxLevel() - consumed;
}

size_t
Bootstrapper::evalModDepth() const
{
    return ChebyshevEvaluator::depthForDegree(config_.sineDegree) +
           config_.doubleAngles;
}

Ciphertext
Bootstrapper::modRaise(const Ciphertext &ct) const
{
    OBS_SPAN("boot/modraise");
    ANAHEIM_ASSERT(ct.level == 1, "ModRaise expects a level-1 ciphertext");
    const RnsBasis fullBasis = context_.levelBasis(context_.maxLevel());
    const uint64_t q0 = context_.qBasis().prime(0);

    Ciphertext out;
    out.level = context_.maxLevel();
    out.scale = ct.scale;
    for (const Polynomial *src : {&ct.b, &ct.a}) {
        Polynomial coeff = *src;
        coeff.toCoeff();
        // Centered lift of the mod-q0 residues into every prime.
        std::vector<int64_t> lifted(coeff.degree());
        for (size_t c = 0; c < lifted.size(); ++c)
            lifted[c] = toCentered(coeff.limb(0)[c], q0);
        Polynomial raised = polynomialFromSigned(fullBasis, lifted);
        raised.toEval();
        if (src == &ct.b)
            out.b = std::move(raised);
        else
            out.a = std::move(raised);
    }
    return out;
}

Ciphertext
Bootstrapper::coeffToSlot(const Ciphertext &ct) const
{
    OBS_SPAN("boot/coeff_to_slot");
    Ciphertext current = ct;
    for (const auto &factor : ctsFactors_) {
        current = evaluator_.rescale(transformer_.apply(
            current, factor, galoisKeys_, LinTransAlgorithm::BsgsHoisting));
    }
    return current;
}

Ciphertext
Bootstrapper::evalMod(const Ciphertext &ct) const
{
    OBS_SPAN("boot/eval_mod");
    // Chebyshev cosine followed by r double-angle steps; the result is
    // sin(2*pi*t) / (2*pi) with t = m/q0 + I, i.e. ~m/(2*pi*q0).
    Ciphertext c = chebyshev_.evaluate(ct, sineCoeffs_);
    for (size_t i = 0; i < config_.doubleAngles; ++i) {
        Ciphertext sq = evaluator_.rescale(
            evaluator_.square(c, relinKey_));
        sq = evaluator_.mulInteger(sq, 2);
        c = evaluator_.addConst(sq, {-1.0, 0.0});
    }
    return c;
}

Ciphertext
Bootstrapper::slotToCoeff(const Ciphertext &ct) const
{
    OBS_SPAN("boot/slot_to_coeff");
    Ciphertext current = ct;
    for (const auto &factor : stcFactors_) {
        current = evaluator_.rescale(transformer_.apply(
            current, factor, galoisKeys_, LinTransAlgorithm::BsgsHoisting));
    }
    return current;
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext &ct) const
{
    OBS_SPAN("boot/bootstrap");
    const size_t n = context_.degree();

    // 1. Exhaust remaining levels, then re-express over the full Q.
    Ciphertext low = evaluator_.dropToLevel(ct, 1);
    Ciphertext raised = modRaise(low);

    // 2. CoeffToSlot: slots now hold 0.5 * w with
    //    w_j = (m_j + i*m_{j+n/2} + q0*I-combos) / (q0*a).
    Ciphertext slots = coeffToSlot(raised);

    // 3. Conjugation split into the real and imaginary coefficient
    //    halves; multiplication by -i is the free monomial X^{3N/2}.
    const Ciphertext conj = evaluator_.conjugate(slots, galoisKeys_);
    const Ciphertext lo = evaluator_.add(slots, conj);
    const Ciphertext hi =
        mulMonomial(evaluator_.sub(slots, conj), 3 * n / 2);

    // 4. Approximate modular reduction on both halves.
    const Ciphertext gLo = evalMod(lo);
    Ciphertext gHi = evalMod(hi);

    // 5. Recombine: lo + i * hi, with i = X^{N/2}.
    gHi = mulMonomial(gHi, n / 2);
    const Ciphertext combined = evaluator_.add(gLo, gHi);

    // 6. SlotToCoeff back to the coefficient embedding. The sine output
    //    is 2*pi*m/q0; SlotToCoeff folds q0/delta, leaving the decoded
    //    message multiplied by 2*pi*scale_in/delta, which a scale
    //    redeclaration absorbs exactly.
    Ciphertext out = slotToCoeff(combined);
    const double delta = std::ldexp(1.0, context_.params().logScale);
    out.scale = out.scale * 2.0 * M_PI * ct.scale / delta;
    return out;
}

} // namespace anaheim

#include "polyeval.h"

#include "common/logging.h"

namespace anaheim {

std::vector<double>
monomialToChebyshev(const std::vector<double> &coeffs)
{
    ANAHEIM_ASSERT(!coeffs.empty(), "empty polynomial");
    // Represent each power x^k in the Chebyshev basis via
    // x * T_n = (T_{n+1} + T_{|n-1|}) / 2 and accumulate.
    const size_t degree = coeffs.size() - 1;
    std::vector<double> result(coeffs.size(), 0.0);
    // chebOfPower holds the Chebyshev expansion of x^k.
    std::vector<double> chebOfPower(coeffs.size(), 0.0);
    chebOfPower[0] = 1.0; // x^0 = T_0
    result[0] += coeffs[0];
    for (size_t k = 1; k <= degree; ++k) {
        std::vector<double> next(coeffs.size(), 0.0);
        for (size_t n = 0; n < coeffs.size(); ++n) {
            const double c = chebOfPower[n];
            if (c == 0.0)
                continue;
            if (n == 0) {
                // x * T_0 = T_1.
                next[1] += c;
            } else {
                if (n + 1 < next.size())
                    next[n + 1] += 0.5 * c;
                next[n - 1] += 0.5 * c;
            }
        }
        chebOfPower = std::move(next);
        for (size_t n = 0; n < result.size(); ++n)
            result[n] += coeffs[k] * chebOfPower[n];
    }
    return result;
}

Ciphertext
PolynomialEvaluator::evaluate(const Ciphertext &x,
                              const std::vector<double> &monomialCoeffs)
    const
{
    return chebyshev_.evaluate(x, monomialToChebyshev(monomialCoeffs));
}

Ciphertext
PolynomialEvaluator::evaluateFunction(
    const Ciphertext &x, const std::function<double(double)> &f,
    size_t degree) const
{
    return chebyshev_.evaluate(x, chebyshevFit(f, degree));
}

} // namespace anaheim

/**
 * @file
 * Timing and energy model of Anaheim PIM kernels.
 *
 * Near-bank PIM (§VI-A) simulates the per-bank command stream of the
 * fused Alg.-1 execution through the dram BankEngine — all banks run in
 * lockstep during all-bank operation, so one bank's schedule is the
 * device's. The custom-HBM variant (§VI-D) places one PIM unit per
 * several banks on the logic die: ACT/PRE latencies hide behind the
 * other banks' streaming, at a lower aggregate internal bandwidth
 * (Table III: 4x vs 16x the external bandwidth on A100).
 */

#ifndef ANAHEIM_PIM_KERNELMODEL_H
#define ANAHEIM_PIM_KERNELMODEL_H

#include "dram/bank.h"
#include "dram/timing.h"
#include "isa.h"
#include "layout.h"
#include "sim/health.h"

namespace anaheim {

enum class PimVariant { NearBank, CustomHbm };

struct PimConfig {
    PimVariant variant = PimVariant::NearBank;
    /** Data-buffer entries per PIM unit (B of §VI-A / Fig. 9). */
    size_t bufferEntries = 16;
    /** PIM unit clock in GHz (Table III). */
    double clockGHz = 0.378;
    /** Banks sharing one PIM unit (1 for near-bank). */
    size_t banksPerUnit = 1;
    /** Banks of one die group that share each limb (§VI-B). */
    size_t banksPerDieGroup = 512;
    /** Number of die groups working on different limbs in parallel. */
    size_t dieGroups = 5;
    /** MMAC lanes per unit (matches the 256-bit global I/O). */
    size_t lanes = 8;
    /** Use the column-partitioning layout (off for the w/o-CP
     *  sensitivity study, Fig. 10). */
    bool columnPartition = true;
    /** Energy per modular multiply-accumulate, pJ (ASAP7-derived with
     *  the paper's conservative DRAM-process compensation). */
    double mmacEnergyPj = 1.5;

    /**
     * Degraded-mode state (set by the framework after a health-driven
     * quarantine; empty/zero on a healthy device). Because all banks
     * of a die group run in lockstep, the device degrades to the
     * *worst* group: `offlineBanks` holds that group's quarantined
     * bank indices — layouts stripe each limb over the remaining
     * healthy banks (more chunks per bank, so longer lockstep
     * streams), and energy only charges the banks that still switch.
     */
    std::vector<size_t> offlineBanks;
    /** Quarantined MMAC lanes per unit: the surviving lanes absorb the
     *  dead lanes' multiplies, stretching the chunk cadence by
     *  lanes / healthyLanes(). */
    size_t quarantinedLanes = 0;

    size_t healthyBanksPerDieGroup() const
    {
        return banksPerDieGroup > offlineBanks.size()
                   ? banksPerDieGroup - offlineBanks.size()
                   : 1;
    }
    size_t healthyLanes() const
    {
        return lanes > quarantinedLanes ? lanes - quarantinedLanes : 1;
    }

    /** Config degraded by a quarantine set: the worst die group's
     *  offline banks (lockstep makes it the device bottleneck) and its
     *  quarantined lane count, clamped so at least one bank and one
     *  lane survive. Identity when nothing is quarantined. */
    PimConfig degraded(const ResourceMap &resources) const;

    /** Near-bank A100 configuration (Table III column 1). */
    static PimConfig nearBankA100();
    /** Custom-HBM A100 configuration (Table III column 2). */
    static PimConfig customHbmA100();
    /** Near-bank RTX 4090 configuration (Table III column 3). */
    static PimConfig nearBankRtx4090();
};

struct PimExecStats {
    double timeNs = 0.0;
    double energyPj = 0.0;
    CommandCounts commands;
    /** Total chunks streamed through the MMAC units (all banks). */
    double chunksMoved = 0.0;
    /** Chunk granularity used. */
    size_t chunkGranularity = 0;
    bool supported = true;
};

class PimKernelModel
{
  public:
    PimKernelModel(const DramConfig &dram, const PimConfig &pim)
        : dram_(dram), pim_(pim)
    {
    }

    const PimConfig &config() const { return pim_; }

    /**
     * Execute one PIM instruction over `limbs` limbs of degree-n
     * polynomials, using all banks. Returns device-level time/energy.
     */
    PimExecStats execute(PimOpcode opcode, size_t fanIn, size_t limbs,
                         size_t n) const;

    /** Time/energy of moving the same bytes over the regular DRAM
     *  interface (the GPU-side baseline of Fig. 9). */
    PimExecStats baseline(PimOpcode opcode, size_t fanIn, size_t limbs,
                          size_t n) const;

  private:
    PimExecStats executeNearBank(const PimInstrProfile &profile,
                                 size_t limbs, size_t n) const;
    PimExecStats executeCustomHbm(const PimInstrProfile &profile,
                                  size_t limbs, size_t n) const;
    PimExecStats executeChainedPiece(PimOpcode opcode, size_t fanIn,
                                     size_t limbs, size_t n) const;

    DramConfig dram_;
    PimConfig pim_;
};

} // namespace anaheim

#endif // ANAHEIM_PIM_KERNELMODEL_H

/**
 * @file
 * The Anaheim PIM instruction set (Table II) and the static execution
 * profile of each instruction: how many operand streams it reads and
 * writes per chunk group and how many data-buffer regions the fused
 * Alg.-1-style execution needs (which determines the chunk granularity
 * G = floor(B / bufferRegions)).
 */

#ifndef ANAHEIM_PIM_ISA_H
#define ANAHEIM_PIM_ISA_H

#include <cstddef>
#include <string>

namespace anaheim {

enum class PimOpcode {
    Move,
    Neg,
    Add,
    Sub,
    Mult,
    Mac,
    PMult,
    PMac,
    CAdd,
    CSub,
    CMult,
    CMac,
    Tensor,
    TensorSq,
    ModDownEp,
    PAccum,
    CAccum,
};

const char *pimOpcodeName(PimOpcode opcode);

/** Static per-instruction execution profile. For PAccum/CAccum the
 *  K-dependent entries scale with the fan-in. */
struct PimInstrProfile {
    /** Chunks read from the first source PolyGroup per chunk group
     *  (e.g. the p_i plaintexts of PAccum, Alg. 1 phase 1). */
    size_t readsGroup0 = 0;
    /** Chunks read from the second source PolyGroup per chunk group
     *  (the a_i/b_i operands, Alg. 1 phase 2). */
    size_t readsGroup1 = 0;
    /** Chunks written to the destination PolyGroup per chunk group. */
    size_t writes = 0;
    /** Buffer regions (G-sized) the execution keeps live. */
    size_t bufferRegions = 0;
    /** MMAC passes per streamed chunk (modular mult+add per lane). */
    double mmacPerChunk = 1.0;
};

/** Profile of an instruction; fanIn is K for PAccum/CAccum. */
PimInstrProfile pimInstrProfile(PimOpcode opcode, size_t fanIn = 1);

/** Whether the instruction is executable with a B-entry buffer
 *  (G = floor(B / bufferRegions) >= 1; Fig. 9's unsupported cases). */
bool pimInstrSupported(PimOpcode opcode, size_t fanIn,
                       size_t bufferEntries);

} // namespace anaheim

#endif // ANAHEIM_PIM_ISA_H

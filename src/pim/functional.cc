#include "functional.h"

#include <array>

#include "common/logging.h"

namespace anaheim {

PimFunctionalUnit::PimFunctionalUnit(uint64_t q) : q_(q), mont_(q)
{
    ANAHEIM_ASSERT(q < (1ULL << 28), "PIM prime must be below 2^28");
}

uint32_t
PimFunctionalUnit::laneMul(uint32_t a, uint32_t b) const
{
    // 32-bit storage words truncated to 28 bits at the unit boundary;
    // product through the Montgomery reduction circuit. mulMod keeps
    // one operand in Montgomery form internally, matching the scaling
    // the hardware folds into constants.
    const uint32_t am = a & 0x0fffffffu;
    const uint32_t bm = b & 0x0fffffffu;
    return static_cast<uint32_t>(mont_.mulMod(am % q_, bm % q_));
}

uint32_t
PimFunctionalUnit::prepareConstant(uint32_t constant) const
{
    return mont_.toMont((constant & 0x0fffffffu) % q_);
}

uint32_t
PimFunctionalUnit::laneAdd(uint32_t a, uint32_t b) const
{
    const uint64_t sum =
        static_cast<uint64_t>(a % q_) + static_cast<uint64_t>(b % q_);
    return static_cast<uint32_t>(sum >= q_ ? sum - q_ : sum);
}

uint32_t
PimFunctionalUnit::laneSub(uint32_t a, uint32_t b) const
{
    const uint64_t x = a % q_;
    const uint64_t y = b % q_;
    return static_cast<uint32_t>(x >= y ? x - y : x + q_ - y);
}

PimVector
PimFunctionalUnit::move(const PimVector &a) const
{
    return a;
}

PimVector
PimFunctionalUnit::neg(const PimVector &a) const
{
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneSub(0, a[i]);
    return out;
}

PimVector
PimFunctionalUnit::add(const PimVector &a, const PimVector &b) const
{
    ANAHEIM_ASSERT(a.size() == b.size(), "operand size mismatch");
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneAdd(a[i], b[i]);
    return out;
}

PimVector
PimFunctionalUnit::sub(const PimVector &a, const PimVector &b) const
{
    ANAHEIM_ASSERT(a.size() == b.size(), "operand size mismatch");
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneSub(a[i], b[i]);
    return out;
}

PimVector
PimFunctionalUnit::mult(const PimVector &a, const PimVector &b) const
{
    ANAHEIM_ASSERT(a.size() == b.size(), "operand size mismatch");
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneMul(a[i], b[i]);
    return out;
}

PimVector
PimFunctionalUnit::mac(const PimVector &a, const PimVector &b,
                       const PimVector &c) const
{
    PimVector out = mult(a, b);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = laneAdd(out[i], c[i]);
    return out;
}

std::pair<PimVector, PimVector>
PimFunctionalUnit::pMult(const PimVector &a, const PimVector &b,
                         const PimVector &p) const
{
    return {mult(a, p), mult(b, p)};
}

PimVector
PimFunctionalUnit::cAdd(const PimVector &a, uint32_t constant) const
{
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneAdd(a[i], constant);
    return out;
}

PimVector
PimFunctionalUnit::cMult(const PimVector &a, uint32_t constant) const
{
    // The broadcast constant enters Montgomery form once; each lane
    // then pays a single reduction instead of a full round trip.
    const uint32_t cMont = prepareConstant(constant);
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        out[i] = static_cast<uint32_t>(
            mont_.mulModPrepared((a[i] & 0x0fffffffu) % q_, cMont));
    }
    return out;
}

PimVector
PimFunctionalUnit::cMac(const PimVector &a, const PimVector &b,
                        uint32_t constant) const
{
    const uint32_t cMont = prepareConstant(constant);
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const uint32_t prod = static_cast<uint32_t>(
            mont_.mulModPrepared((a[i] & 0x0fffffffu) % q_, cMont));
        out[i] = laneAdd(prod, b[i]);
    }
    return out;
}

std::array<PimVector, 3>
PimFunctionalUnit::tensor(const PimVector &a, const PimVector &b,
                          const PimVector &c, const PimVector &d) const
{
    std::array<PimVector, 3> out;
    out[0] = mult(a, c);
    out[2] = mult(b, d);
    out[1] = mac(a, d, mult(b, c));
    return out;
}

PimVector
PimFunctionalUnit::modDownEp(const PimVector &a, const PimVector &b,
                             uint32_t constant) const
{
    return cMult(sub(a, b), constant);
}

std::pair<PimVector, PimVector>
PimFunctionalUnit::pAccum(const std::vector<PimVector> &a,
                          const std::vector<PimVector> &b,
                          const std::vector<PimVector> &p) const
{
    ANAHEIM_ASSERT(!a.empty() && a.size() == b.size() &&
                       a.size() == p.size(),
                   "PAccum fan-in mismatch");
    PimVector x(a[0].size(), 0);
    PimVector y(a[0].size(), 0);
    for (size_t k = 0; k < a.size(); ++k) {
        x = add(x, mult(a[k], p[k]));
        y = add(y, mult(b[k], p[k]));
    }
    return {x, y};
}

} // namespace anaheim

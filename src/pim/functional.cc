#include "functional.h"

#include <array>

#include "common/logging.h"
#include "obs/trace.h"
#include "common/status.h"

namespace anaheim {

PimFunctionalUnit::PimFunctionalUnit(uint64_t q) : q_(q), mont_(q)
{
    ANAHEIM_ASSERT(q < (1ULL << 28), "PIM prime must be below 2^28");
}

uint32_t
PimFunctionalUnit::laneMul(uint32_t a, uint32_t b, size_t i) const
{
    // 32-bit storage words truncated to 28 bits at the unit boundary;
    // product through the Montgomery reduction circuit. mulMod keeps
    // one operand in Montgomery form internally, matching the scaling
    // the hardware folds into constants. The product itself rides the
    // uncoded MMAC datapath, so it passes the lane fault site.
    const uint32_t am = a & 0x0fffffffu;
    const uint32_t bm = b & 0x0fffffffu;
    return lane(static_cast<uint32_t>(mont_.mulMod(am % q_, bm % q_)), i);
}

uint32_t
PimFunctionalUnit::prepareConstant(uint32_t constant) const
{
    return mont_.toMont((constant & 0x0fffffffu) % q_);
}

uint32_t
PimFunctionalUnit::laneAdd(uint32_t a, uint32_t b) const
{
    const uint64_t sum =
        static_cast<uint64_t>(a % q_) + static_cast<uint64_t>(b % q_);
    return static_cast<uint32_t>(sum >= q_ ? sum - q_ : sum);
}

uint32_t
PimFunctionalUnit::laneSub(uint32_t a, uint32_t b) const
{
    const uint64_t x = a % q_;
    const uint64_t y = b % q_;
    return static_cast<uint32_t>(x >= y ? x - y : x + q_ - y);
}

PimVector
PimFunctionalUnit::move(const PimVector &a) const
{
    ANAHEIM_CHECK(!a.empty(), InvalidArgument, "Move with empty operand");
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = read(a, i);
    writeOut(out);
    return out;
}

PimVector
PimFunctionalUnit::neg(const PimVector &a) const
{
    ANAHEIM_CHECK(!a.empty(), InvalidArgument, "Neg with empty operand");
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneSub(0, read(a, i));
    writeOut(out);
    return out;
}

PimVector
PimFunctionalUnit::add(const PimVector &a, const PimVector &b) const
{
    ANAHEIM_CHECK(!a.empty() && a.size() == b.size(), InvalidArgument,
                  "Add operand size mismatch: ", a.size(), " vs ",
                  b.size());
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneAdd(read(a, i), read(b, i, 1));
    writeOut(out);
    return out;
}

PimVector
PimFunctionalUnit::sub(const PimVector &a, const PimVector &b) const
{
    ANAHEIM_CHECK(!a.empty() && a.size() == b.size(), InvalidArgument,
                  "Sub operand size mismatch: ", a.size(), " vs ",
                  b.size());
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneSub(read(a, i), read(b, i, 1));
    writeOut(out);
    return out;
}

PimVector
PimFunctionalUnit::mult(const PimVector &a, const PimVector &b) const
{
    OBS_SPAN("pim/func/mult");
    ANAHEIM_CHECK(!a.empty() && a.size() == b.size(), InvalidArgument,
                  "Mult operand size mismatch: ", a.size(), " vs ",
                  b.size());
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneMul(read(a, i), read(b, i, 1), i);
    writeOut(out);
    return out;
}

PimVector
PimFunctionalUnit::mac(const PimVector &a, const PimVector &b,
                       const PimVector &c) const
{
    OBS_SPAN("pim/func/mac");
    ANAHEIM_CHECK(c.size() == a.size(), InvalidArgument,
                  "Mac accumulator size mismatch: ", c.size(), " vs ",
                  a.size());
    ANAHEIM_CHECK(!a.empty() && a.size() == b.size(), InvalidArgument,
                  "Mac operand size mismatch: ", a.size(), " vs ",
                  b.size());
    // Fused product + accumulate: one lane pass, one write-back (the
    // intermediate product never touches the array).
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        out[i] = laneAdd(laneMul(read(a, i), read(b, i, 1), i),
                         read(c, i, 2));
    }
    writeOut(out);
    return out;
}

std::pair<PimVector, PimVector>
PimFunctionalUnit::pMult(const PimVector &a, const PimVector &b,
                         const PimVector &p) const
{
    return {mult(a, p), mult(b, p)};
}

PimVector
PimFunctionalUnit::cAdd(const PimVector &a, uint32_t constant) const
{
    ANAHEIM_CHECK(!a.empty(), InvalidArgument, "CAdd with empty operand");
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = laneAdd(read(a, i), constant);
    writeOut(out);
    return out;
}

PimVector
PimFunctionalUnit::cMult(const PimVector &a, uint32_t constant) const
{
    ANAHEIM_CHECK(!a.empty(), InvalidArgument, "CMult with empty operand");
    // The broadcast constant enters Montgomery form once; each lane
    // then pays a single reduction instead of a full round trip.
    const uint32_t cMont = prepareConstant(constant);
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        out[i] = lane(
            static_cast<uint32_t>(mont_.mulModPrepared(
                (read(a, i) & 0x0fffffffu) % q_, cMont)),
            i);
    }
    writeOut(out);
    return out;
}

PimVector
PimFunctionalUnit::cMac(const PimVector &a, const PimVector &b,
                        uint32_t constant) const
{
    ANAHEIM_CHECK(!a.empty() && a.size() == b.size(), InvalidArgument,
                  "CMac operand size mismatch: ", a.size(), " vs ",
                  b.size());
    const uint32_t cMont = prepareConstant(constant);
    PimVector out(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const uint32_t prod = lane(
            static_cast<uint32_t>(mont_.mulModPrepared(
                (read(a, i) & 0x0fffffffu) % q_, cMont)),
            i);
        out[i] = laneAdd(prod, read(b, i, 1));
    }
    writeOut(out);
    return out;
}

std::array<PimVector, 3>
PimFunctionalUnit::tensor(const PimVector &a, const PimVector &b,
                          const PimVector &c, const PimVector &d) const
{
    OBS_SPAN("pim/func/tensor");
    ANAHEIM_CHECK(!a.empty() && a.size() == b.size() &&
                      a.size() == c.size() && a.size() == d.size(),
                  InvalidArgument, "Tensor operand size mismatch: ",
                  a.size(), "/", b.size(), "/", c.size(), "/", d.size());
    std::array<PimVector, 3> out;
    out[0] = mult(a, c);
    out[2] = mult(b, d);
    out[1] = mac(a, d, mult(b, c));
    return out;
}

PimVector
PimFunctionalUnit::modDownEp(const PimVector &a, const PimVector &b,
                             uint32_t constant) const
{
    OBS_SPAN("pim/func/moddown_ep");
    ANAHEIM_CHECK(!a.empty() && a.size() == b.size(), InvalidArgument,
                  "ModDownEp operand size mismatch: ", a.size(), " vs ",
                  b.size());
    return cMult(sub(a, b), constant);
}

std::pair<PimVector, PimVector>
PimFunctionalUnit::pAccum(const std::vector<PimVector> &a,
                          const std::vector<PimVector> &b,
                          const std::vector<PimVector> &p) const
{
    OBS_SPAN("pim/func/paccum");
    ANAHEIM_CHECK(!a.empty() && a.size() == b.size() &&
                      a.size() == p.size(),
                  InvalidArgument, "PAccum fan-in mismatch: ", a.size(),
                  "/", b.size(), "/", p.size());
    PimVector x(a[0].size(), 0);
    PimVector y(a[0].size(), 0);
    for (size_t k = 0; k < a.size(); ++k) {
        x = add(x, mult(a[k], p[k]));
        y = add(y, mult(b[k], p[k]));
    }
    return {x, y};
}

} // namespace anaheim

/**
 * @file
 * Functional (bit-level) model of the Anaheim PIM unit: eight MMAC
 * lanes with the 28-bit Montgomery reduction datapath of §VI-A,
 * executing the Table II instructions on real polynomial data. Used to
 * verify that PIM offloading computes exactly what the GPU kernels
 * would (tests cross-check against src/poly).
 *
 * Values are stored as 32-bit words in DRAM and truncated to 28 bits
 * when entering the unit, mirroring the hardware.
 */

#ifndef ANAHEIM_PIM_FUNCTIONAL_H
#define ANAHEIM_PIM_FUNCTIONAL_H

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "isa.h"
#include "math/montgomery.h"
#include "sim/readpath.h"

namespace anaheim {

/** One limb's worth of data for a PIM operand (32-bit words). */
using PimVector = std::vector<uint32_t>;

class PimFunctionalUnit
{
  public:
    /** @param q Prime below 2^28 (broadcast with the instruction). */
    explicit PimFunctionalUnit(uint64_t q);

    uint64_t modulus() const { return q_; }

    /**
     * Route every operand word read, every result word stored, and
     * every post-multiply lane value through a fault-injection + ECC
     * datapath (non-owning; pass nullptr to detach). With no path
     * attached, accesses are direct and the results are bitwise
     * identical to the fault-free model.
     */
    void attachReadPath(PimDataPath *path) { readPath_ = path; }
    const PimDataPath *readPath() const { return readPath_; }

    /** @name Table II instructions (plain-domain semantics). */
    /// @{
    PimVector move(const PimVector &a) const;
    PimVector neg(const PimVector &a) const;
    PimVector add(const PimVector &a, const PimVector &b) const;
    PimVector sub(const PimVector &a, const PimVector &b) const;
    PimVector mult(const PimVector &a, const PimVector &b) const;
    PimVector mac(const PimVector &a, const PimVector &b,
                  const PimVector &c) const;
    /** x = a*p, y = b*p. */
    std::pair<PimVector, PimVector> pMult(const PimVector &a,
                                          const PimVector &b,
                                          const PimVector &p) const;
    PimVector cAdd(const PimVector &a, uint32_t constant) const;
    PimVector cMult(const PimVector &a, uint32_t constant) const;
    PimVector cMac(const PimVector &a, const PimVector &b,
                   uint32_t constant) const;
    /** x = a*c, y = a*d + b*c, z = b*d. */
    std::array<PimVector, 3> tensor(const PimVector &a, const PimVector &b,
                                    const PimVector &c,
                                    const PimVector &d) const;
    /** x = C * (a - b). */
    PimVector modDownEp(const PimVector &a, const PimVector &b,
                        uint32_t constant) const;
    /** x = sum a_i * p_i, y = sum b_i * p_i. */
    std::pair<PimVector, PimVector> pAccum(
        const std::vector<PimVector> &a, const std::vector<PimVector> &b,
        const std::vector<PimVector> &p) const;
    /// @}

  private:
    /** Modular product of two lane inputs at element `i`; the result
     *  rides the MMAC transient fault site when a path is attached. */
    uint32_t laneMul(uint32_t a, uint32_t b, size_t i) const;
    uint32_t laneAdd(uint32_t a, uint32_t b) const;
    uint32_t laneSub(uint32_t a, uint32_t b) const;
    /** Truncate/reduce a broadcast constant and lift it into Montgomery
     *  form once, for the keep-in-form cMult/cMac lane loops. */
    uint32_t prepareConstant(uint32_t constant) const;

    /** One operand word entering the unit, via the resilient datapath
     *  when one is attached. `slot` is the operand's position within
     *  the instruction (a, b, c, ... = 0, 1, 2, ...), so different
     *  operands never share fault sites. */
    uint32_t read(const PimVector &a, size_t i, size_t slot = 0) const
    {
        return readPath_ ? readPath_->readWord(a[i], operandWord(slot, i))
                         : a[i];
    }

    /** Post-multiply lane value at element `i` through the (uncoded)
     *  MMAC transient fault site. */
    uint32_t lane(uint32_t value, size_t i) const
    {
        return readPath_ ? readPath_->laneValue(value, i) : value;
    }

    /** Store an instruction's result vector through the write-back
     *  drivers. `slot` separates multi-output instructions (x, y, z =
     *  0, 1, 2) so outputs never share fault sites. */
    void writeOut(PimVector &out, size_t slot = 0) const
    {
        if (readPath_ == nullptr)
            return;
        for (size_t i = 0; i < out.size(); ++i)
            out[i] = readPath_->writeWord(out[i], operandWord(slot, i));
    }

    uint64_t q_;
    Montgomery mont_;
    PimDataPath *readPath_ = nullptr;
};

} // namespace anaheim

#endif // ANAHEIM_PIM_FUNCTIONAL_H

#include "isa.h"

#include <algorithm>

#include "common/logging.h"

namespace anaheim {

const char *
pimOpcodeName(PimOpcode opcode)
{
    switch (opcode) {
      case PimOpcode::Move: return "Move";
      case PimOpcode::Neg: return "Neg";
      case PimOpcode::Add: return "Add";
      case PimOpcode::Sub: return "Sub";
      case PimOpcode::Mult: return "Mult";
      case PimOpcode::Mac: return "MAC";
      case PimOpcode::PMult: return "PMult";
      case PimOpcode::PMac: return "PMAC";
      case PimOpcode::CAdd: return "CAdd";
      case PimOpcode::CSub: return "CSub";
      case PimOpcode::CMult: return "CMult";
      case PimOpcode::CMac: return "CMAC";
      case PimOpcode::Tensor: return "Tensor";
      case PimOpcode::TensorSq: return "TensorSq";
      case PimOpcode::ModDownEp: return "ModDownEp";
      case PimOpcode::PAccum: return "PAccum";
      case PimOpcode::CAccum: return "CAccum";
    }
    return "?";
}

PimInstrProfile
pimInstrProfile(PimOpcode opcode, size_t fanIn)
{
    PimInstrProfile profile;
    switch (opcode) {
      case PimOpcode::Move:
      case PimOpcode::Neg:
        profile = {0, 1, 1, 1, 1.0};
        break;
      case PimOpcode::Add:
      case PimOpcode::Sub:
        profile = {1, 1, 1, 2, 1.0};
        break;
      case PimOpcode::Mult:
        profile = {1, 1, 1, 2, 1.0};
        break;
      case PimOpcode::Mac:
        profile = {1, 2, 1, 2, 1.0};
        break;
      case PimOpcode::PMult:
        // x = a*p, y = b*p: p buffered, a/b streamed.
        profile = {1, 2, 2, 3, 1.0};
        break;
      case PimOpcode::PMac:
        profile = {1, 4, 2, 3, 1.0};
        break;
      case PimOpcode::CAdd:
      case PimOpcode::CSub:
      case PimOpcode::CMult:
        // Constant broadcast from the instruction decoder (§VI-A).
        profile = {0, 1, 1, 1, 1.0};
        break;
      case PimOpcode::CMac:
        profile = {0, 2, 1, 2, 1.0};
        break;
      case PimOpcode::Tensor:
        // (a,b) buffered; (c,d) streamed; x,y,z produced.
        profile = {2, 2, 3, 5, 2.0};
        break;
      case PimOpcode::TensorSq:
        profile = {0, 2, 3, 4, 1.5};
        break;
      case PimOpcode::ModDownEp:
        profile = {1, 1, 1, 2, 1.0};
        break;
      case PimOpcode::PAccum:
        // Alg. 1: K plaintext chunks buffered, 2K operand chunks
        // streamed, 2 accumulator outputs.
        profile = {fanIn, 2 * fanIn, 2, fanIn + 2, 1.0};
        break;
      case PimOpcode::CAccum:
        profile = {0, 2 * fanIn, 2, fanIn + 2, 1.0};
        break;
    }
    return profile;
}

bool
pimInstrSupported(PimOpcode opcode, size_t fanIn, size_t bufferEntries)
{
    // Accumulations beyond the canonical PAccum<4> split into chained
    // pieces (kernelmodel.cc), so support is bounded by the smaller of
    // the fan-in and the canonical form.
    if (opcode == PimOpcode::PAccum || opcode == PimOpcode::CAccum) {
        const size_t effective = std::min<size_t>(fanIn, 4);
        return bufferEntries >= effective + 2;
    }
    const PimInstrProfile profile = pimInstrProfile(opcode, fanIn);
    return bufferEntries / profile.bufferRegions >= 1;
}

} // namespace anaheim

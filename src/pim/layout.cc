#include "layout.h"

#include <algorithm>

#include "common/logging.h"
#include "common/status.h"

namespace anaheim {

ColumnPartitionLayout::ColumnPartitionLayout(const DramConfig &config,
                                             size_t banksPerGroup,
                                             size_t n, size_t columnGroups,
                                             std::vector<size_t> offlineBanks)
    : chunksPerRow_(config.chunksPerRow()), columnGroups_(columnGroups),
      offlineBanks_(std::move(offlineBanks))
{
    ANAHEIM_ASSERT(columnGroups >= 1 &&
                       chunksPerRow_ % columnGroups == 0,
                   "column groups must divide the row");
    chunksPerCg_ = chunksPerRow_ / columnGroups;
    std::sort(offlineBanks_.begin(), offlineBanks_.end());
    offlineBanks_.erase(
        std::unique(offlineBanks_.begin(), offlineBanks_.end()),
        offlineBanks_.end());
    for (const size_t bank : offlineBanks_) {
        ANAHEIM_CHECK(bank < banksPerGroup, InvalidArgument,
                      "offline bank ", bank, " outside the die group's ",
                      banksPerGroup, " banks");
    }
    ANAHEIM_CHECK(offlineBanks_.size() < banksPerGroup,
                  ResourceExhausted,
                  "every bank of the die group is quarantined");
    healthyBanks_ = banksPerGroup - offlineBanks_.size();
    const size_t limbBytes = 4 * n;
    const size_t totalChunks = limbBytes / config.chunkBytes;
    ANAHEIM_ASSERT(totalChunks >= healthyBanks_,
                   "fewer chunks than healthy banks in the die group");
    // Each limb stripes over the healthy banks only; the ceil absorbs
    // the remainder chunks on part of the banks (identical to the
    // floor division whenever the geometry divides exactly, i.e. on
    // every fault-free standard configuration).
    chunksPerBank_ = (totalChunks + healthyBanks_ - 1) / healthyBanks_;
    // A limb occupies one CG slice of rowsPerRg adjacent rows.
    rowsPerRg_ = (chunksPerBank_ + chunksPerCg_ - 1) / chunksPerCg_;
    // Generous per-bank row budget (a real bank has 2^14+ rows; we only
    // need relative occupancy).
    rowCapacity_ = 16384;
}

PolyGroupDesc
ColumnPartitionLayout::allocate(size_t polys, size_t limbs)
{
    ANAHEIM_CHECK(polys >= 1 && polys <= columnGroups_, InvalidArgument,
                  "PolyGroup wider than the column groups: ", polys);
    PolyGroupDesc desc;
    desc.id = nextId_++;
    desc.polys = polys;
    desc.limbsPerBank = limbs;
    desc.offlineBanks = offlineBanks_;
    // Each limb takes one row group; different polynomials share the
    // row group through different column groups.
    for (size_t p = 0; p < polys; ++p) {
        for (size_t limb = 0; limb < limbs; ++limb) {
            LimbPlacement placement;
            placement.rowGroupBase = nextRow_ + limb * rowsPerRg_;
            placement.rowsPerGroup = rowsPerRg_;
            placement.columnGroup = p;
            placement.chunksPerCg = chunksPerCg_;
            desc.placements.push_back(placement);
        }
    }
    nextRow_ += limbs * rowsPerRg_;
    if (nextRow_ > rowCapacity_) {
        nextRow_ -= limbs * rowsPerRg_; // roll back the failed claim
        --nextId_;
        ANAHEIM_RAISE(ResourceExhausted,
                      "PolyGroup allocation exceeds bank rows: need ",
                      nextRow_ + limbs * rowsPerRg_, " of ", rowCapacity_);
    }
    return desc;
}

size_t
ColumnPartitionLayout::actsPerIteration(size_t polysTouched,
                                        bool columnPartitioned) const
{
    if (columnPartitioned) {
        // All touched polynomials share the row group: the iteration
        // activates each involved PolyGroup's row once (sources grouped
        // into at most two groups plus the destination, Alg. 1).
        return 1;
    }
    // Contiguous allocation: every polynomial lives in its own rows, so
    // each access to a different polynomial reopens a row.
    return polysTouched;
}

} // namespace anaheim

/**
 * @file
 * Column-partitioning data layout and PolyGroup allocator (§VI-B).
 *
 * A die group holds L/S limbs of each polynomial; within a bank, each
 * limb occupies C chunks. Rows are split into column groups (CGs) of
 * 2/4/8 chunks; a limb wraps across the adjacent rows of a row group
 * (RG). A PolyGroup spans several RGs x CGs so that the polynomials an
 * element-wise op touches live in the same rows — which is what bounds
 * the ACT/PRE count per chunk-group iteration (Alg. 1).
 */

#ifndef ANAHEIM_PIM_LAYOUT_H
#define ANAHEIM_PIM_LAYOUT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dram/timing.h"

namespace anaheim {

/** Physical placement of one limb of one polynomial within a bank. */
struct LimbPlacement {
    size_t rowGroupBase = 0; ///< first row of the row group
    size_t rowsPerGroup = 0;
    size_t columnGroup = 0;  ///< CG index within each row
    size_t chunksPerCg = 0;  ///< chunks per row belonging to this CG
};

struct PolyGroupDesc {
    size_t id = 0;
    size_t polys = 0;
    size_t limbsPerBank = 0;
    std::vector<LimbPlacement> placements; ///< poly-major
    /** Quarantined banks this group was allocated around (its chunks
     *  are striped over the healthy banks only). */
    std::vector<size_t> offlineBanks;
};

class ColumnPartitionLayout
{
  public:
    /**
     * @param config        DRAM geometry.
     * @param banksPerGroup Banks of one die group sharing a limb.
     * @param n             Ring degree.
     * @param columnGroups  Row partition factor (4, 8 or 16).
     * @param offlineBanks  Quarantined bank indices (< banksPerGroup)
     *                      to allocate around: each limb is striped
     *                      over the healthy banks only, so every
     *                      healthy bank absorbs
     *                      ceil(chunks / healthyBanks) chunks per limb.
     *                      With no offline banks and an exactly
     *                      divisible geometry this is the original
     *                      layout bit for bit.
     */
    ColumnPartitionLayout(const DramConfig &config, size_t banksPerGroup,
                          size_t n, size_t columnGroups,
                          std::vector<size_t> offlineBanks = {});

    /** Chunks each *healthy* bank stores per limb (the paper's
     *  example: 16). */
    size_t chunksPerBankPerLimb() const { return chunksPerBank_; }
    size_t chunksPerColumnGroup() const { return chunksPerCg_; }
    size_t rowsPerRowGroup() const { return rowsPerRg_; }
    size_t columnGroups() const { return columnGroups_; }
    /** Banks actually carrying data. */
    size_t healthyBanks() const { return healthyBanks_; }
    const std::vector<size_t> &offlineBanks() const
    {
        return offlineBanks_;
    }

    /**
     * Allocate a PolyGroup of `polys` polynomials x `limbs` limbs.
     * Throws AnaheimError(ResourceExhausted) when the bank capacity is
     * exhausted (the allocator state is left unchanged, so a caller
     * can catch and place the group elsewhere) and
     * AnaheimError(InvalidArgument) when `polys` exceeds the CGs.
     */
    PolyGroupDesc allocate(size_t polys, size_t limbs);

    /** Rows currently allocated in each bank. */
    size_t rowsUsed() const { return nextRow_; }
    size_t rowCapacity() const { return rowCapacity_; }

    /**
     * Rows that must be activated per chunk-group iteration when
     * accessing `polysTouched` polynomials laid out in one PolyGroup
     * (column partitioning keeps this at one row group regardless of
     * the polynomial count — the property Alg. 1 exploits).
     */
    size_t actsPerIteration(size_t polysTouched, bool columnPartitioned)
        const;

  private:
    size_t chunksPerRow_;
    size_t columnGroups_;
    size_t chunksPerCg_;
    size_t chunksPerBank_;
    size_t rowsPerRg_;
    size_t rowCapacity_;
    size_t healthyBanks_;
    std::vector<size_t> offlineBanks_;
    size_t nextRow_ = 0;
    size_t nextId_ = 0;
};

} // namespace anaheim

#endif // ANAHEIM_PIM_LAYOUT_H

#include "kernelmodel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"

namespace anaheim {

PimConfig
PimConfig::degraded(const ResourceMap &resources) const
{
    PimConfig config = *this;
    // All banks of a die group run in lockstep, so the device follows
    // its worst group; the healthier groups idle their excess banks.
    size_t worstGroup = 0;
    size_t worstCount = 0;
    for (size_t g = 0; g < resources.dieGroups; ++g) {
        const size_t count = resources.quarantinedBanksInGroup(g);
        if (count > worstCount) {
            worstCount = count;
            worstGroup = g;
        }
    }
    config.offlineBanks = resources.offlineBanksInGroup(worstGroup);
    if (config.offlineBanks.size() >= config.banksPerDieGroup)
        config.offlineBanks.resize(config.banksPerDieGroup - 1);
    config.quarantinedLanes =
        std::min(resources.maxQuarantinedLanesPerGroup(),
                 config.lanes > 0 ? config.lanes - 1 : size_t{0});
    return config;
}

PimConfig
PimConfig::nearBankA100()
{
    PimConfig config;
    config.variant = PimVariant::NearBank;
    config.bufferEntries = 16;
    config.clockGHz = 0.378;
    config.banksPerUnit = 1;
    config.banksPerDieGroup = 512; // one 8-Hi stack x 64 banks
    config.dieGroups = 5;
    return config;
}

PimConfig
PimConfig::customHbmA100()
{
    PimConfig config;
    config.variant = PimVariant::CustomHbm;
    config.bufferEntries = 16;
    config.clockGHz = 0.756;
    config.banksPerUnit = 8;
    config.banksPerDieGroup = 512;
    config.dieGroups = 5;
    return config;
}

PimConfig
PimConfig::nearBankRtx4090()
{
    PimConfig config;
    config.variant = PimVariant::NearBank;
    config.bufferEntries = 32;
    config.clockGHz = 0.656;
    config.banksPerUnit = 1;
    config.banksPerDieGroup = 128; // die group of 4 dies x 32 banks
    config.dieGroups = 3;
    return config;
}

namespace {

/** Effective chunk period in DRAM cycles: the larger of the column
 *  cadence and the PIM unit's processing rate (8 lanes = 1 chunk per
 *  MMAC pass). */
int
chunkPeriodCycles(const DramTiming &timing, double clockGHz,
                  double mmacPerChunk)
{
    const double pimNs = mmacPerChunk / clockGHz;
    const double cadence =
        std::max(static_cast<double>(timing.tCCD) * timing.tCkNs, pimNs);
    return std::max(timing.tCCD,
                    static_cast<int>(std::ceil(cadence / timing.tCkNs)));
}

} // namespace

PimExecStats
PimKernelModel::executeNearBank(const PimInstrProfile &profile,
                                size_t limbs, size_t n) const
{
    PimExecStats stats;
    ColumnPartitionLayout layout(dram_, pim_.banksPerDieGroup, n, 8,
                                 pim_.offlineBanks);
    const size_t chunksPerBank = layout.chunksPerBankPerLimb();
    size_t g = pim_.bufferEntries / profile.bufferRegions;
    if (g == 0) {
        stats.supported = false;
        return stats;
    }
    // The chunk granularity cannot exceed the chunks a bank holds.
    g = std::min(g, chunksPerBank);
    stats.chunkGranularity = g;
    const size_t iterations = (chunksPerBank + g - 1) / g;
    // Limbs are distributed across die groups; each group processes its
    // share sequentially, all banks of the group in lockstep.
    const size_t limbBatches =
        (limbs + pim_.dieGroups - 1) / pim_.dieGroups;

    // Dead MMAC lanes stretch the per-chunk processing time: the
    // surviving lanes serialize the missing lanes' multiplies.
    const double laneFactor = static_cast<double>(pim_.lanes) /
                              static_cast<double>(pim_.healthyLanes());
    DramTiming timing = dram_.timing;
    timing.tCCD = chunkPeriodCycles(dram_.timing, pim_.clockGHz,
                                    profile.mmacPerChunk * laneFactor);
    BankEngine bank(timing);

    const size_t actsPerPhase =
        layout.actsPerIteration(1, pim_.columnPartition);
    for (size_t batch = 0; batch < limbBatches; ++batch) {
        for (size_t iter = 0; iter < iterations; ++iter) {
            // Phase 1: buffered operands (plaintexts / first sources).
            if (profile.readsGroup0 > 0) {
                const size_t acts =
                    pim_.columnPartition
                        ? actsPerPhase
                        : std::max<size_t>(1, profile.readsGroup0);
                for (size_t a = 0; a < acts; ++a) {
                    bank.activateRow();
                    const size_t share =
                        (profile.readsGroup0 * g + acts - 1) / acts;
                    for (size_t c = 0; c < share; ++c)
                        bank.issue(DramCommand::Rd);
                }
            }
            // Phase 2: streamed operands through the MMAC units.
            {
                const size_t acts =
                    pim_.columnPartition
                        ? actsPerPhase
                        : std::max<size_t>(1, profile.readsGroup1);
                for (size_t a = 0; a < acts; ++a) {
                    bank.activateRow();
                    const size_t share =
                        (profile.readsGroup1 * g + acts - 1) / acts;
                    for (size_t c = 0; c < share; ++c)
                        bank.issue(DramCommand::Rd);
                }
            }
            // Phase 3: write back the results.
            {
                const size_t acts =
                    pim_.columnPartition
                        ? actsPerPhase
                        : std::max<size_t>(1, profile.writes);
                for (size_t a = 0; a < acts; ++a) {
                    bank.activateRow();
                    const size_t share =
                        (profile.writes * g + acts - 1) / acts;
                    for (size_t c = 0; c < share; ++c)
                        bank.issue(DramCommand::Wr);
                }
            }
        }
    }
    if (bank.rowOpen())
        bank.issue(DramCommand::Pre);

    stats.timeNs = bank.elapsedNs();
    stats.commands = bank.counts();

    // Only the healthy banks still switch; quarantined ones idle.
    const double banks =
        static_cast<double>(pim_.healthyBanksPerDieGroup()) *
        pim_.dieGroups;
    const double chunksPerBankTotal = static_cast<double>(
        (profile.readsGroup0 + profile.readsGroup1 + profile.writes) * g *
        iterations * limbBatches);
    stats.chunksMoved = chunksPerBankTotal * banks;
    const double bytesMoved = stats.chunksMoved * dram_.chunkBytes;
    const double mmacs = stats.chunksMoved * pim_.lanes *
                         profile.mmacPerChunk;
    stats.energyPj =
        static_cast<double>(stats.commands.acts) * banks *
            dram_.energy.actPrePj +
        bytesMoved * dram_.energy.nearBankPerBytePj +
        mmacs * pim_.mmacEnergyPj;
    return stats;
}

PimExecStats
PimKernelModel::executeCustomHbm(const PimInstrProfile &profile,
                                 size_t limbs, size_t n) const
{
    PimExecStats stats;
    ColumnPartitionLayout layout(dram_, pim_.banksPerDieGroup, n, 8,
                                 pim_.offlineBanks);
    const size_t chunksPerBank = layout.chunksPerBankPerLimb();
    size_t g = pim_.bufferEntries / profile.bufferRegions;
    if (g == 0) {
        stats.supported = false;
        return stats;
    }
    // The chunk granularity cannot exceed the chunks a bank holds.
    g = std::min(g, chunksPerBank);
    stats.chunkGranularity = g;

    const size_t limbBatches =
        (limbs + pim_.dieGroups - 1) / pim_.dieGroups;
    const double chunksPerBankTotal = static_cast<double>(
        (profile.readsGroup0 + profile.readsGroup1 + profile.writes) *
        chunksPerBank * limbBatches);

    // The logic-die unit serves banksPerUnit banks: streaming is bound
    // by the unit's MMAC rate (one chunk per pass), while ACT/PRE of
    // one bank hides behind the streaming of the other banks. Residual
    // exposure shrinks with both G and the banks-per-unit ratio. Dead
    // lanes stretch the per-chunk pass like on the near-bank variant.
    const double laneFactor = static_cast<double>(pim_.lanes) /
                              static_cast<double>(pim_.healthyLanes());
    const double chunkNs =
        profile.mmacPerChunk * laneFactor / pim_.clockGHz;
    const double streamNs =
        chunksPerBankTotal * static_cast<double>(pim_.banksPerUnit) *
        chunkNs;
    const double actPreNs =
        static_cast<double>(dram_.timing.tRP + dram_.timing.tRCD) *
        dram_.timing.tCkNs;
    const size_t iterations = (chunksPerBank + g - 1) / g;
    const double phases = 3.0 * static_cast<double>(iterations) *
                          static_cast<double>(limbBatches) *
                          (pim_.columnPartition
                               ? 1.0
                               : static_cast<double>(
                                     profile.readsGroup0 +
                                     profile.readsGroup1 + profile.writes) /
                                     3.0);
    const double exposedActNs =
        phases * actPreNs / static_cast<double>(pim_.banksPerUnit);
    stats.timeNs = streamNs + exposedActNs;

    const double banks =
        static_cast<double>(pim_.healthyBanksPerDieGroup()) *
        pim_.dieGroups;
    stats.chunksMoved = chunksPerBankTotal * banks;
    const double bytesMoved = stats.chunksMoved * dram_.chunkBytes;
    const double mmacs = stats.chunksMoved * pim_.lanes *
                         profile.mmacPerChunk;
    stats.commands.acts = static_cast<uint64_t>(phases);
    stats.commands.pres = stats.commands.acts;
    // Data crosses the die to the logic-die TSVs: global-I/O energy.
    stats.energyPj =
        phases * banks * dram_.energy.actPrePj +
        bytesMoved * (dram_.energy.nearBankPerBytePj +
                      dram_.energy.globalIoPerBytePj) +
        mmacs * pim_.mmacEnergyPj;
    return stats;
}

PimExecStats
PimKernelModel::execute(PimOpcode opcode, size_t fanIn, size_t limbs,
                        size_t n) const
{
    // Accumulation instructions whose buffer demand (fanIn + 2 regions)
    // exceeds B are chained: each piece accumulates its share and the
    // running accumulator pair is re-read/re-written between pieces.
    if ((opcode == PimOpcode::PAccum || opcode == PimOpcode::CAccum) &&
        fanIn + 2 > pim_.bufferEntries) {
        // Chain in canonical PAccum<4> pieces (Alg. 1): larger pieces
        // would shrink G below what amortizes ACT/PRE.
        const size_t maxFanIn =
            std::min<size_t>(4, pim_.bufferEntries - 2);
        ANAHEIM_ASSERT(maxFanIn >= 1, "buffer too small for accumulation");
        PimExecStats total;
        size_t remaining = fanIn;
        bool first = true;
        while (remaining > 0) {
            const size_t piece = std::min(remaining, maxFanIn);
            PimExecStats stats =
                first ? execute(opcode, piece, limbs, n)
                      : executeChainedPiece(opcode, piece, limbs, n);
            total.timeNs += stats.timeNs;
            total.energyPj += stats.energyPj;
            total.commands.acts += stats.commands.acts;
            total.commands.reads += stats.commands.reads;
            total.commands.writes += stats.commands.writes;
            total.commands.pres += stats.commands.pres;
            total.chunksMoved += stats.chunksMoved;
            total.chunkGranularity = stats.chunkGranularity;
            remaining -= piece;
            first = false;
        }
        return total;
    }

    const PimInstrProfile profile = pimInstrProfile(opcode, fanIn);
    PimExecStats stats;
    switch (pim_.variant) {
      case PimVariant::NearBank:
        stats = executeNearBank(profile, limbs, n);
        break;
      case PimVariant::CustomHbm:
        stats = executeCustomHbm(profile, limbs, n);
        break;
      default:
        ANAHEIM_PANIC("unknown PIM variant");
    }
    static obs::Counter &instructions =
        obs::MetricsRegistry::global().counter("pim.model.instructions");
    static obs::Gauge &chunks =
        obs::MetricsRegistry::global().gauge("pim.model.chunks_moved");
    instructions.add();
    chunks.add(stats.chunksMoved);
    return stats;
}

PimExecStats
PimKernelModel::executeChainedPiece(PimOpcode opcode, size_t fanIn,
                                    size_t limbs, size_t n) const
{
    // A continuation piece additionally re-reads the two accumulator
    // polynomials it carries forward.
    PimInstrProfile profile = pimInstrProfile(opcode, fanIn);
    profile.readsGroup1 += 2;
    switch (pim_.variant) {
      case PimVariant::NearBank:
        return executeNearBank(profile, limbs, n);
      case PimVariant::CustomHbm:
        return executeCustomHbm(profile, limbs, n);
    }
    ANAHEIM_PANIC("unknown PIM variant");
}

PimExecStats
PimKernelModel::baseline(PimOpcode opcode, size_t fanIn, size_t limbs,
                         size_t n) const
{
    // GPU-side execution of the same op: every operand crosses the
    // external interface at the device's peak bandwidth.
    const PimInstrProfile profile = pimInstrProfile(opcode, fanIn);
    const double streams = static_cast<double>(
        profile.readsGroup0 + profile.readsGroup1 + profile.writes);
    const double bytes = streams * static_cast<double>(limbs) * 4.0 *
                         static_cast<double>(n);
    PimExecStats stats;
    stats.timeNs = bytes / dram_.externalBwGBs; // GB/s == bytes/ns
    stats.chunksMoved = bytes / dram_.chunkBytes;
    const double rowsTouched = bytes / dram_.rowBytes;
    stats.energyPj =
        rowsTouched * dram_.energy.actPrePj +
        bytes * (dram_.energy.nearBankPerBytePj +
                 dram_.energy.globalIoPerBytePj +
                 dram_.energy.externalPerBytePj);
    return stats;
}

} // namespace anaheim

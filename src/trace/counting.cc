#include "counting.h"

#include <algorithm>
#include <cmath>

namespace anaheim {

double
evkBytes(const TraceParams &params)
{
    return 2.0 * params.digits() * params.extended() * limbBytes(params.n);
}

double
countNttLimbOps(const OpSequence &seq)
{
    double count = 0;
    for (const auto &op : seq.ops) {
        if (op.type == KernelType::Ntt || op.type == KernelType::Intt)
            count += static_cast<double>(op.limbs);
    }
    return count;
}

LinTransCosts
analyzeLinearTransforms(const TraceParams &params, size_t numTransforms,
                        size_t k, TraceLtAlgorithm algorithm)
{
    LinTransCosts costs;
    TraceParams current = params;
    for (size_t t = 0; t < numTransforms; ++t) {
        const OpSequence seq =
            buildLinearTransform(current, k, algorithm, {});
        costs.nttOps += countNttLimbOps(seq);

        const double ptLimb = limbBytes(current.n);
        switch (algorithm) {
          case TraceLtAlgorithm::Base:
            costs.evkBytes += static_cast<double>(k) * evkBytes(current);
            costs.plaintextBytes +=
                static_cast<double>(k * current.level) * ptLimb;
            // No data reuse to speak of: streaming only.
            costs.cacheBytes = std::max(
                costs.cacheBytes,
                3.0 * 2.0 * current.level * ptLimb);
            break;
          case TraceLtAlgorithm::Hoisting: {
            // BSGS: distinct keys for the baby and giant rotations.
            const double babies = std::ceil(std::sqrt(
                static_cast<double>(k)));
            costs.evkBytes += 2.0 * babies * evkBytes(current);
          }
            // Plaintexts live in the extended modulus PQ (§III-B).
            costs.plaintextBytes +=
                static_cast<double>(k * current.extended()) * ptLimb;
            // MAD-style alpha-limb caching of the decomposed digits
            // plus accumulators (the 217MB figure of Fig. 1).
            costs.cacheBytes = std::max(
                costs.cacheBytes,
                (static_cast<double>(current.digits()) *
                     current.extended() +
                 4.0 * current.extended() +
                 static_cast<double>(k) * current.alpha) *
                    ptLimb);
            break;
          case TraceLtAlgorithm::MinKS:
            // One evk per transform, reused across its rotations.
            costs.evkBytes += evkBytes(current);
            costs.plaintextBytes +=
                static_cast<double>(k * current.level) * ptLimb;
            // Reuse requires the evk plus several ciphertexts resident.
            costs.cacheBytes = std::max(
                costs.cacheBytes,
                evkBytes(current) +
                    3.0 * 2.0 * current.level * ptLimb);
            break;
        }
        if (current.level > params.alpha + 1)
            current.level -= 1;
    }
    return costs;
}

} // namespace anaheim

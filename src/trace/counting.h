/**
 * @file
 * Counting utilities for the algorithm-comparison table of Fig. 1:
 * distinct evk / plaintext footprints, (I)NTT op counts and the cache
 * capacity hoisting needs, for a collection of linear transforms.
 */

#ifndef ANAHEIM_TRACE_COUNTING_H
#define ANAHEIM_TRACE_COUNTING_H

#include "builders.h"

namespace anaheim {

struct LinTransCosts {
    /** Distinct evaluation-key bytes the algorithm touches. */
    double evkBytes = 0;
    /** Plaintext bytes (hoisting stores them in the extended basis). */
    double plaintextBytes = 0;
    /** Number of (I)NTT limb-transforms executed. */
    double nttOps = 0;
    /** On-chip capacity needed to realize the algorithm's data reuse
     *  (alpha-limb caching for hoisting, evk residency for MinKS). */
    double cacheBytes = 0;
};

/**
 * Costs of a collection of linear transforms — the CoeffToSlot [17]
 * setting of Fig. 1's table: `numTransforms` transforms of `k`
 * rotations each at descending levels starting from params.level.
 */
LinTransCosts analyzeLinearTransforms(const TraceParams &params,
                                      size_t numTransforms, size_t k,
                                      TraceLtAlgorithm algorithm);

/** Count (I)NTT limb-transforms in a trace. */
double countNttLimbOps(const OpSequence &seq);

/** Bytes of one evk at the given parameters (2*D polys in R_PQ). */
double evkBytes(const TraceParams &params);

} // namespace anaheim

#endif // ANAHEIM_TRACE_COUNTING_H

#include "validate.h"

#include "common/status.h"

namespace anaheim {

std::vector<TraceIssue>
validateTrace(const OpSequence &seq)
{
    std::vector<TraceIssue> issues;
    auto report = [&](size_t i, std::string text) {
        issues.push_back({i, std::move(text)});
    };

    if (seq.n == 0)
        report(0, "sequence has no ring degree");
    for (size_t i = 0; i < seq.ops.size(); ++i) {
        const KernelOp &op = seq.ops[i];
        if (op.n == 0)
            report(i, "op has zero ring degree");
        if (op.limbs == 0)
            report(i, "op processes zero limbs");
        if (op.n != 0 && seq.n != 0 && op.n != seq.n)
            report(i, "op ring degree differs from the sequence's");
        if (op.fanIn == 0)
            report(i, "zero fan-in");
        if (op.pimEligible &&
            kernelClass(op.type) != KernelClass::ElementWise)
            report(i, "non-element-wise op marked PIM-eligible");
        if (op.type != KernelType::Automorphism &&
            kernelClass(op.type) == KernelClass::ElementWise) {
            if (op.reads.empty() && op.type != KernelType::EwCAdd)
                report(i, "element-wise op reads nothing");
            if (op.writes.empty())
                report(i, "element-wise op writes nothing");
        }
        for (const auto &operand : op.reads) {
            if (operand.limbs == 0)
                report(i, "read operand with zero limbs");
        }
        for (const auto &operand : op.writes) {
            if (operand.limbs == 0)
                report(i, "write operand with zero limbs");
        }
        if ((op.type == KernelType::EwPAccum ||
             op.type == KernelType::EwCAccum) &&
            op.fanIn < 1)
            report(i, "accumulation with no terms");
    }
    return issues;
}

Status
checkTraceStatus(const OpSequence &seq)
{
    const auto issues = validateTrace(seq);
    if (issues.empty())
        return Status::okStatus();
    return Status(ErrorCode::InvalidArgument,
                  detail::composeMessage(
                      "invalid trace '", seq.name, "': op ",
                      issues[0].opIndex, ": ", issues[0].description,
                      " (", issues.size(), " issue(s) total)"));
}

void
checkTrace(const OpSequence &seq)
{
    const Status status = checkTraceStatus(seq);
    if (!status.ok())
        throw AnaheimError(status.code(), status.message());
}

} // namespace anaheim

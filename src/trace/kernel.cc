#include "kernel.h"

#include <cmath>

#include "common/logging.h"

namespace anaheim {

KernelClass
kernelClass(KernelType type)
{
    switch (type) {
      case KernelType::Ntt:
      case KernelType::Intt:
        return KernelClass::NttIntt;
      case KernelType::BConv:
        return KernelClass::BConv;
      case KernelType::Automorphism:
        return KernelClass::Automorphism;
      default:
        return KernelClass::ElementWise;
    }
}

const char *
kernelTypeName(KernelType type)
{
    switch (type) {
      case KernelType::EwMove: return "Move";
      case KernelType::EwAdd: return "Add";
      case KernelType::EwSub: return "Sub";
      case KernelType::EwMult: return "Mult";
      case KernelType::EwMac: return "MAC";
      case KernelType::EwPMult: return "PMult";
      case KernelType::EwPMac: return "PMAC";
      case KernelType::EwCAdd: return "CAdd";
      case KernelType::EwCMult: return "CMult";
      case KernelType::EwCMac: return "CMAC";
      case KernelType::EwTensor: return "Tensor";
      case KernelType::EwTensorSq: return "TensorSq";
      case KernelType::EwModDownEp: return "ModDownEp";
      case KernelType::EwPAccum: return "PAccum";
      case KernelType::EwCAccum: return "CAccum";
      case KernelType::Ntt: return "NTT";
      case KernelType::Intt: return "INTT";
      case KernelType::BConv: return "BConv";
      case KernelType::Automorphism: return "Automorphism";
    }
    return "?";
}

const char *
kernelClassName(KernelClass cls)
{
    switch (cls) {
      case KernelClass::ElementWise: return "ElementWise";
      case KernelClass::NttIntt: return "(I)NTT";
      case KernelClass::BConv: return "BConv";
      case KernelClass::Automorphism: return "Automorphism";
    }
    return "?";
}

namespace {

/** Integer ops per data point for each element-wise kernel. A modular
 *  mult costs ~5 32-bit integer ops (Montgomery/Barrett), an add 1. */
double
intOpsPerPoint(KernelType type, size_t fanIn)
{
    constexpr double kMult = 5.0;
    constexpr double kAdd = 1.0;
    switch (type) {
      case KernelType::EwMove: return 0.0;
      case KernelType::EwAdd:
      case KernelType::EwSub:
      case KernelType::EwCAdd: return kAdd;
      case KernelType::EwMult:
      case KernelType::EwCMult: return kMult;
      case KernelType::EwMac:
      case KernelType::EwCMac: return kMult + kAdd;
      case KernelType::EwPMult: return 2.0 * kMult;
      case KernelType::EwPMac: return 2.0 * (kMult + kAdd);
      case KernelType::EwTensor: return 4.0 * kMult + kAdd;
      case KernelType::EwTensorSq: return 3.0 * kMult + kAdd;
      case KernelType::EwModDownEp: return kMult + kAdd;
      case KernelType::EwPAccum:
        return 2.0 * fanIn * (kMult + kAdd);
      case KernelType::EwCAccum:
        return 2.0 * fanIn * (kMult + kAdd);
      default:
        ANAHEIM_PANIC("not an element-wise kernel");
    }
}

double
modMultsPerPoint(KernelType type, size_t fanIn)
{
    switch (type) {
      case KernelType::EwMove:
      case KernelType::EwAdd:
      case KernelType::EwSub:
      case KernelType::EwCAdd: return 0.0;
      case KernelType::EwMult:
      case KernelType::EwCMult: return 1.0;
      case KernelType::EwMac:
      case KernelType::EwCMac: return 1.0;
      case KernelType::EwPMult: return 2.0;
      case KernelType::EwPMac: return 2.0;
      case KernelType::EwTensor: return 4.0;
      case KernelType::EwTensorSq: return 3.0;
      case KernelType::EwModDownEp: return 1.0;
      case KernelType::EwPAccum: return 2.0 * fanIn;
      case KernelType::EwCAccum: return 2.0 * fanIn;
      default:
        ANAHEIM_PANIC("not an element-wise kernel");
    }
}

} // namespace

double
KernelOp::modMults() const
{
    const double points = static_cast<double>(limbs) * n;
    switch (type) {
      case KernelType::Ntt:
      case KernelType::Intt:
        // FFT-based: N/2 log N butterflies, 1 mult each (§IX).
        return static_cast<double>(limbs) * (n / 2.0) *
               std::log2(static_cast<double>(n));
      case KernelType::BConv:
        // alpha x L matrix times L x N input: fanIn = input limb count,
        // limbs = output limb count, plus the qHatInv scaling stage.
        return points * static_cast<double>(fanIn) +
               static_cast<double>(fanIn) * n;
      case KernelType::Automorphism:
        return 0.0;
      default:
        return points * modMultsPerPoint(type, fanIn);
    }
}

double
KernelOp::intOps() const
{
    const double points = static_cast<double>(limbs) * n;
    switch (type) {
      case KernelType::Ntt:
      case KernelType::Intt:
        // ~8 integer ops per butterfly (mult + reduction + add/sub + twiddle handling).
        return static_cast<double>(limbs) * (n / 2.0) *
               std::log2(static_cast<double>(n)) * 8.0;
      case KernelType::BConv:
        return modMults() * 6.0;
      case KernelType::Automorphism:
        return 0.0;
      default:
        return points * intOpsPerPoint(type, fanIn);
    }
}

double
KernelOp::readBytes() const
{
    double total = 0.0;
    for (const auto &operand : reads)
        total += static_cast<double>(operand.limbs) * limbBytes(n);
    return total;
}

double
KernelOp::writeBytes() const
{
    double total = 0.0;
    for (const auto &operand : writes)
        total += static_cast<double>(operand.limbs) * limbBytes(n);
    return total;
}

void
OpSequence::append(const OpSequence &other)
{
    ops.insert(ops.end(), other.ops.begin(), other.ops.end());
}

double
OpSequence::totalIntOps() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += op.intOps();
    return total;
}

double
OpSequence::totalBytes() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += op.readBytes() + op.writeBytes();
    return total;
}

size_t
OpSequence::countType(KernelType type) const
{
    size_t count = 0;
    for (const auto &op : ops)
        count += op.type == type ? 1 : 0;
    return count;
}

} // namespace anaheim

/**
 * @file
 * Kernel-level operation IR for the Anaheim performance model.
 *
 * The functional library (src/ckks, src/boot) establishes WHAT the op
 * sequences are; this IR describes each GPU/PIM kernel of those
 * sequences at the paper's parameters (N = 2^16, 32-bit words), so the
 * gpu/dram/pim models can reproduce the paper's time/energy analysis
 * without executing 2^16-point NTTs.
 *
 * Operand traffic is recorded symbolically (kind + limb count); the GPU
 * traffic model decides which operands hit DRAM under the MAD-style
 * caching assumptions of §V-D.
 */

#ifndef ANAHEIM_TRACE_KERNEL_H
#define ANAHEIM_TRACE_KERNEL_H

#include <cstddef>
#include <string>
#include <vector>

namespace anaheim {

/** Kernel categories used in the paper's breakdown figures. */
enum class KernelClass {
    ElementWise, ///< the PIM-eligible ops (Table II)
    NttIntt,     ///< (I)NTT, compute-bound on GPUs (§IV-D)
    BConv,       ///< basis conversion matrix multiply
    Automorphism ///< pure data permutation
};

enum class KernelType {
    // Element-wise (PIM ISA, Table II).
    EwMove,
    EwAdd,
    EwSub,
    EwMult,
    EwMac,
    EwPMult,
    EwPMac,
    EwCAdd,
    EwCMult,
    EwCMac,
    EwTensor,
    EwTensorSq,
    EwModDownEp,
    EwPAccum,
    EwCAccum,
    // Compute kernels.
    Ntt,
    Intt,
    BConv,
    // Data movement.
    Automorphism,
};

KernelClass kernelClass(KernelType type);
const char *kernelTypeName(KernelType type);
const char *kernelClassName(KernelClass cls);

/** How an operand behaves in the cache (MAD [2] caching model). */
enum class OperandKind {
    Working,      ///< ciphertext polynomials currently being computed on
    Evk,          ///< evaluation keys: huge, streamed, one-time-use
    PlainConst,   ///< plaintext operands: streamed, one-time-use
    Intermediate, ///< producer-consumer temporary inside a sequence
};

struct Operand {
    OperandKind kind;
    /** Number of limbs (each limb is N words). */
    size_t limbs;
};

struct KernelOp {
    KernelType type;
    /** Phase tag for Gantt charts / grouping: "ModUp", "KeyMult",
     *  "AutAccum", "ModDown", ... */
    std::string phase;
    /** Ring degree. */
    size_t n = 0;
    /** Limbs of output processed (drives the int-op count). */
    size_t limbs = 0;
    /** Accumulation fan-in K for PAccum/CAccum; input limb count for
     *  BConv. */
    size_t fanIn = 1;
    std::vector<Operand> reads;
    std::vector<Operand> writes;
    /** Whether Anaheim offloads this kernel to PIM when enabled. */
    bool pimEligible = false;
    /** Id linking kernels fused into one launch (-1: not fused). */
    int fusionGroup = -1;

    /** 32-bit integer-op count (modular mult ~ 5 int ops). */
    double intOps() const;
    /** Modular multiplication count (Table III's TOPS are mult+add). */
    double modMults() const;
    /** Total operand bytes on the read / write side (4-byte words). */
    double readBytes() const;
    double writeBytes() const;
};

/** A full workload/function trace plus its bookkeeping. */
struct OpSequence {
    std::string name;
    size_t n = 0;
    std::vector<KernelOp> ops;
    /** Number of mults applicable after bootstrapping (T_boot,eff). */
    double levelsEff = 1.0;

    void append(const OpSequence &other);
    double totalIntOps() const;
    double totalBytes() const;
    size_t countType(KernelType type) const;
};

/** Bytes of one limb at the paper's 32-bit word size. */
inline double
limbBytes(size_t n)
{
    return 4.0 * static_cast<double>(n);
}

} // namespace anaheim

#endif // ANAHEIM_TRACE_KERNEL_H

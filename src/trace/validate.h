/**
 * @file
 * Structural validation of kernel traces. The framework and the
 * builders' tests run traces through this pass to catch malformed
 * sequences (zero-sized ops, element-wise kernels with no operands,
 * PIM-eligible compute kernels) before they silently skew the model.
 */

#ifndef ANAHEIM_TRACE_VALIDATE_H
#define ANAHEIM_TRACE_VALIDATE_H

#include <string>
#include <vector>

#include "common/status.h"
#include "kernel.h"

namespace anaheim {

/** One structural problem found in a trace. */
struct TraceIssue {
    size_t opIndex;
    std::string description;
};

/** Collect every structural problem in the sequence (empty == valid).*/
std::vector<TraceIssue> validateTrace(const OpSequence &seq);

/** Status form: Ok when the trace is valid, InvalidArgument naming the
 *  first problem (and the total count) otherwise. */
Status checkTraceStatus(const OpSequence &seq);

/** Throw AnaheimError(InvalidArgument) on the first problem; use at
 *  trace-construction time. Callers may catch and recover. */
void checkTrace(const OpSequence &seq);

} // namespace anaheim

#endif // ANAHEIM_TRACE_VALIDATE_H

#include "builders.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace anaheim {

namespace {

KernelOp
make(KernelType type, const char *phase, size_t n, size_t limbs,
     size_t fanIn, std::vector<Operand> reads, std::vector<Operand> writes,
     bool pimEligible)
{
    KernelOp op;
    op.type = type;
    op.phase = phase;
    op.n = n;
    op.limbs = limbs;
    op.fanIn = fanIn;
    op.reads = std::move(reads);
    op.writes = std::move(writes);
    op.pimEligible = pimEligible;
    return op;
}

} // namespace

TraceParams
TraceParams::forDnum(size_t dnum)
{
    // Total limb budget L + alpha ~ 68 from log PQ < 1623 at ~24-bit
    // effective primes; L = budget * D / (D + 1) (Table IV is D = 4).
    TraceParams params;
    switch (dnum) {
      case 2: params.level = 45; params.alpha = 23; break;
      case 3: params.level = 51; params.alpha = 17; break;
      case 4: params.level = 54; params.alpha = 14; break;
      case 6: params.level = 58; params.alpha = 10; break;
      default:
        params.level = 68 * dnum / (dnum + 1);
        params.alpha = (params.level + dnum - 1) / dnum;
        break;
    }
    return params;
}

OpSequence
buildHAdd(const TraceParams &params)
{
    OpSequence seq;
    seq.name = "HADD";
    seq.n = params.n;
    const size_t l = params.level;
    seq.ops.push_back(make(KernelType::EwAdd, "HADD", params.n, 2 * l, 1,
                           {{OperandKind::Working, 4 * l}},
                           {{OperandKind::Working, 2 * l}}, true));
    return seq;
}

OpSequence
buildPMult(const TraceParams &params)
{
    OpSequence seq;
    seq.name = "PMULT";
    seq.n = params.n;
    const size_t l = params.level;
    seq.ops.push_back(make(KernelType::EwPMult, "PMULT", params.n, l, 1,
                           {{OperandKind::Working, 2 * l},
                            {OperandKind::PlainConst, l}},
                           {{OperandKind::Working, 2 * l}}, true));
    return seq;
}

OpSequence
buildKeySwitch(const TraceParams &params, const char *phase)
{
    OpSequence seq;
    seq.name = "KeySwitch";
    seq.n = params.n;
    const size_t l = params.level;
    const size_t alpha = params.alpha;
    const size_t ext = params.extended();
    const size_t digits = params.digits();

    // ModUp: per digit INTT -> BConv -> NTT (§II-B).
    for (size_t j = 0; j < digits; ++j) {
        const size_t digitLimbs = std::min(alpha, l - j * alpha);
        const size_t outLimbs = ext - digitLimbs;
        seq.ops.push_back(make(KernelType::Intt, "ModUp", params.n,
                               digitLimbs, 1,
                               {{OperandKind::Working, digitLimbs}},
                               {{OperandKind::Intermediate, digitLimbs}},
                               false));
        seq.ops.push_back(make(KernelType::BConv, "ModUp", params.n,
                               outLimbs, digitLimbs,
                               {{OperandKind::Intermediate, digitLimbs}},
                               {{OperandKind::Intermediate, outLimbs}},
                               false));
        seq.ops.push_back(make(KernelType::Ntt, "ModUp", params.n,
                               outLimbs, 1,
                               {{OperandKind::Intermediate, outLimbs}},
                               {{OperandKind::Intermediate, outLimbs}},
                               false));
    }

    // KeyMult: PAccum<D> over the extended modulus — the element-wise
    // block Anaheim offloads.
    seq.ops.push_back(make(KernelType::EwPAccum, phase, params.n, ext,
                           digits,
                           {{OperandKind::Working, digits * ext},
                            {OperandKind::Evk, 2 * digits * ext}},
                           {{OperandKind::Intermediate, 2 * ext}}, true));

    // ModDown on both result polynomials.
    for (int poly = 0; poly < 2; ++poly) {
        seq.ops.push_back(make(KernelType::Intt, "ModDown", params.n,
                               alpha, 1,
                               {{OperandKind::Intermediate, alpha}},
                               {{OperandKind::Intermediate, alpha}},
                               false));
        seq.ops.push_back(make(KernelType::BConv, "ModDown", params.n, l,
                               alpha,
                               {{OperandKind::Intermediate, alpha}},
                               {{OperandKind::Intermediate, l}}, false));
        seq.ops.push_back(make(KernelType::Ntt, "ModDown", params.n, l, 1,
                               {{OperandKind::Intermediate, l}},
                               {{OperandKind::Intermediate, l}}, false));
        seq.ops.push_back(make(KernelType::EwModDownEp, "ModDown",
                               params.n, l, 1,
                               {{OperandKind::Intermediate, 2 * l}},
                               {{OperandKind::Working, l}}, true));
    }
    return seq;
}

OpSequence
buildRescale(const TraceParams &params)
{
    OpSequence seq;
    seq.name = "Rescale";
    seq.n = params.n;
    const size_t l = params.level;
    for (int poly = 0; poly < 2; ++poly) {
        seq.ops.push_back(make(KernelType::Intt, "Rescale", params.n, 1, 1,
                               {{OperandKind::Working, 1}},
                               {{OperandKind::Intermediate, 1}}, false));
        seq.ops.push_back(make(KernelType::Ntt, "Rescale", params.n, l - 1,
                               1, {{OperandKind::Intermediate, l - 1}},
                               {{OperandKind::Intermediate, l - 1}},
                               false));
        seq.ops.push_back(make(KernelType::EwModDownEp, "Rescale",
                               params.n, l - 1, 1,
                               {{OperandKind::Working, l - 1},
                                {OperandKind::Intermediate, l - 1}},
                               {{OperandKind::Working, l - 1}}, true));
    }
    return seq;
}

OpSequence
buildHMult(const TraceParams &params, const TraceOptions &options)
{
    (void)options;
    OpSequence seq;
    seq.name = "HMULT";
    seq.n = params.n;
    const size_t l = params.level;

    seq.ops.push_back(make(KernelType::EwTensor, "Tensor", params.n, l, 1,
                           {{OperandKind::Working, 4 * l}},
                           {{OperandKind::Intermediate, 3 * l}}, true));
    seq.append(buildKeySwitch(params, "KeyMult"));
    seq.ops.push_back(make(KernelType::EwAdd, "Relin", params.n, 2 * l, 1,
                           {{OperandKind::Working, 4 * l}},
                           {{OperandKind::Working, 2 * l}}, true));
    seq.append(buildRescale(params));
    return seq;
}

OpSequence
buildHRot(const TraceParams &params, const TraceOptions &options)
{
    (void)options;
    OpSequence seq;
    seq.name = "HROT";
    seq.n = params.n;
    const size_t l = params.level;
    const size_t ext = params.extended();

    // Fig. 1 (left): ModUp -> KeyMult -> MAC -> automorphism -> ModDown.
    OpSequence ks = buildKeySwitch(params, "KeyMult");
    // Insert MAC + automorphism between KeyMult and ModDown: find the
    // first ModDown op in the keyswitch trace.
    size_t insertAt = ks.ops.size();
    for (size_t i = 0; i < ks.ops.size(); ++i) {
        if (ks.ops[i].phase == std::string("ModDown")) {
            insertAt = i;
            break;
        }
    }
    std::vector<KernelOp> tail(ks.ops.begin() + insertAt, ks.ops.end());
    ks.ops.resize(insertAt);
    ks.ops.push_back(make(KernelType::EwCMac, "MAC", params.n, 2 * ext, 1,
                          {{OperandKind::Intermediate, 2 * ext},
                           {OperandKind::Working, 2 * l}},
                          {{OperandKind::Intermediate, 2 * ext}}, true));
    ks.ops.push_back(make(KernelType::Automorphism, "Automorphism",
                          params.n, 2 * ext, 1,
                          {{OperandKind::Intermediate, 2 * ext}},
                          {{OperandKind::Intermediate, 2 * ext}}, false));
    ks.ops.insert(ks.ops.end(), tail.begin(), tail.end());
    seq.append(ks);
    return seq;
}

OpSequence
buildLinearTransform(const TraceParams &params, size_t k,
                     TraceLtAlgorithm algorithm,
                     const TraceOptions &options)
{
    OpSequence seq;
    seq.name = "LinearTransform";
    seq.n = params.n;
    const size_t l = params.level;
    const size_t ext = params.extended();
    const size_t digits = params.digits();

    switch (algorithm) {
      case TraceLtAlgorithm::Base:
      case TraceLtAlgorithm::MinKS: {
        // K full HROT evaluations (MinKS differs only in reusing one
        // evk; on GPUs the evk streams from DRAM either way, §III-C).
        for (size_t i = 0; i < k; ++i)
            seq.append(buildHRot(params, options));
        // PMULT of each rotated ciphertext and accumulation.
        if (options.basicFuse) {
            seq.ops.push_back(make(
                KernelType::EwPAccum, "MAC", params.n, l, k,
                {{OperandKind::Working, 2 * k * l},
                 {OperandKind::PlainConst, k * l}},
                {{OperandKind::Working, 2 * l}}, true));
        } else {
            for (size_t i = 0; i < k; ++i) {
                seq.ops.push_back(make(KernelType::EwPMult, "MAC",
                                       params.n, l, 1,
                                       {{OperandKind::Working, 2 * l},
                                        {OperandKind::PlainConst, l}},
                                       {{OperandKind::Intermediate, 2 * l}},
                                       true));
                seq.ops.push_back(make(KernelType::EwAdd, "MAC", params.n,
                                       2 * l, 1,
                                       {{OperandKind::Intermediate, 4 * l}},
                                       {{OperandKind::Intermediate, 2 * l}},
                                       true));
            }
        }
        break;
      }
      case TraceLtAlgorithm::Hoisting: {
        // Fig. 5: one ModUp; per-baby-rotation KeyMult; PMULT +
        // accumulation in the extended modulus PQ; one ModDown;
        // AutAccum. With the BSGS decomposition (footnote 1) only
        // ~sqrt(K) baby rotations share the hoisted ModUp, while each
        // of the ~sqrt(K) giant-step groups pays a full keyswitch
        // after its inner accumulation. All K diagonal plaintexts
        // stream regardless.
        const size_t babies = std::min(
            k, static_cast<size_t>(
                   std::ceil(std::sqrt(static_cast<double>(k)))));
        const size_t giants =
            k <= babies ? 0 : (k + babies - 1) / babies - 1;
        const size_t rotations = babies;
        const OpSequence ks = buildKeySwitch(params, "KeyMult");
        // ModUp part of the keyswitch trace (everything before KeyMult).
        for (const auto &op : ks.ops) {
            if (op.phase == std::string("ModUp"))
                seq.ops.push_back(op);
        }
        for (size_t i = 0; i < rotations; ++i) {
            seq.ops.push_back(make(
                KernelType::EwPAccum, "KeyMult", params.n, ext, digits,
                {{OperandKind::Working, digits * ext},
                 {OperandKind::Evk, 2 * digits * ext}},
                {{OperandKind::Intermediate, 2 * ext}}, true));
        }
        // PMULT by the (pre-rotated, §V-B) plaintexts and accumulation,
        // for both result polynomials plus the b-part. The fused kernel
        // reads each rotated pair once (reused across the diagonals of
        // its giant-step group) while all K plaintexts stream.
        if (options.basicFuse) {
            seq.ops.push_back(make(
                KernelType::EwPAccum, "MAC", params.n, ext, k,
                {{OperandKind::Intermediate, 2 * rotations * ext},
                 {OperandKind::PlainConst, k * ext}},
                {{OperandKind::Intermediate, 2 * ext}}, true));
            seq.ops.push_back(make(KernelType::EwPAccum, "MAC", params.n,
                                   l, k,
                                   {{OperandKind::Working, 2 * l},
                                    {OperandKind::PlainConst, k * l}},
                                   {{OperandKind::Intermediate, 2 * l}},
                                   true));
        } else {
            for (size_t i = 0; i < k; ++i) {
                seq.ops.push_back(make(
                    KernelType::EwPMac, "MAC", params.n, ext, 1,
                    {{OperandKind::Intermediate, 2 * ext},
                     {OperandKind::PlainConst, ext},
                     {OperandKind::Intermediate, 2 * ext}},
                    {{OperandKind::Intermediate, 2 * ext}}, true));
                seq.ops.push_back(make(
                    KernelType::EwPMac, "MAC", params.n, l, 1,
                    {{OperandKind::Working, 2 * l},
                     {OperandKind::PlainConst, l},
                     {OperandKind::Intermediate, 2 * l}},
                    {{OperandKind::Intermediate, 2 * l}}, true));
            }
        }
        // One hoisted ModDown for the baby accumulation.
        for (const auto &op : ks.ops) {
            if (op.phase == std::string("ModDown"))
                seq.ops.push_back(op);
        }
        // Giant-step rotations: one full keyswitch per remaining group.
        for (size_t giant = 0; giant < giants; ++giant)
            seq.append(buildKeySwitch(params, "KeyMult"));
        // AutAccum: the relocated automorphisms fused with the final
        // accumulation (§V-B). Without AutFuse, each automorphism is a
        // separate kernel with its own DRAM round trip (2K reads + 2K
        // writes extra).
        if (options.autFuse) {
            seq.ops.push_back(make(KernelType::Automorphism, "AutAccum",
                                   params.n, 2 * l, 1,
                                   {{OperandKind::Working, 2 * l},
                                    {OperandKind::Intermediate, 2 * l}},
                                   {{OperandKind::Working, 2 * l}},
                                   false));
        } else {
            seq.ops.push_back(make(KernelType::Automorphism,
                                   "Automorphism", params.n, 2 * l, 1,
                                   {{OperandKind::Working, 2 * l}},
                                   {{OperandKind::Intermediate, 2 * l}},
                                   false));
            seq.ops.push_back(make(KernelType::Automorphism,
                                   "Automorphism", params.n, 2 * l, 1,
                                   {{OperandKind::Intermediate, 2 * l}},
                                   {{OperandKind::Intermediate, 2 * l}},
                                   false));
            seq.ops.push_back(make(KernelType::EwAdd, "Accum", params.n,
                                   2 * l, 1,
                                   {{OperandKind::Intermediate, 4 * l}},
                                   {{OperandKind::Working, 2 * l}}, true));
        }
        break;
      }
    }
    return seq;
}

double
bootstrapLevelsEff(const TraceParams &params, double fftIter)
{
    // Level budget: sparse-secret encapsulation + EvalMod + margins
    // consume ~23 levels, plus one level per DFT factor on each side;
    // 13 levels stay reserved below the post-boot point. Calibrated to
    // the paper's schedule (54 -> 24, L_eff = 11 at fftIter mix 3/4).
    const double consumed = 23.0 + 2.0 * fftIter;
    const double remaining = static_cast<double>(params.level) - consumed;
    return std::max(1.0, remaining - 13.0);
}

OpSequence
buildBootstrap(const TraceParams &params, double fftIter,
               TraceLtAlgorithm algorithm, const TraceOptions &options)
{
    OpSequence seq;
    seq.name = "Bootstrap";
    seq.n = params.n;
    const size_t slots = params.n / 2;
    const double logSlots = std::log2(static_cast<double>(slots));

    TraceParams current = params;

    // Sparse-secret encapsulation: one keyswitch at full level.
    seq.append(buildKeySwitch(current, "KeyMult"));
    current.level -= 1;

    // CoeffToSlot: ceil(fftIter) stages; per-stage diagonal count for a
    // radix-r factor is 2r - 1 with r = 2^(log slots / fftIter).
    const size_t stages = static_cast<size_t>(std::ceil(fftIter));
    const size_t radix = static_cast<size_t>(
        std::round(std::pow(2.0, logSlots / fftIter)));
    const size_t kStage = 2 * std::max<size_t>(radix, 2) - 1;
    for (size_t s = 0; s < stages; ++s) {
        seq.append(
            buildLinearTransform(current, kStage, algorithm, options));
        seq.append(buildRescale(current));
        current.level -= 1;
    }
    // Conjugation split: one keyswitch.
    seq.append(buildKeySwitch(current, "KeyMult"));

    // EvalMod on both halves: ~16 HMULTs (Chebyshev babies + giants +
    // recursion + double-angle) spread over 11 levels.
    for (int half = 0; half < 2; ++half) {
        for (int step = 0; step < 16; ++step) {
            TraceParams em = current;
            em.level -= static_cast<size_t>(11.0 * step / 16.0);
            seq.append(buildHMult(em, options));
        }
    }
    current.level -= 11;

    // SlotToCoeff stages.
    for (size_t s = 0; s < stages; ++s) {
        seq.append(
            buildLinearTransform(current, kStage, algorithm, options));
        seq.append(buildRescale(current));
        current.level -= 1;
    }

    seq.levelsEff = bootstrapLevelsEff(params, fftIter);
    return seq;
}

} // namespace anaheim

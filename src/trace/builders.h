/**
 * @file
 * Op-sequence builders: generate the kernel traces of CKKS basic
 * functions, linear transforms and bootstrapping at the paper's
 * parameters (Fig. 1 and Fig. 5 flows).
 *
 * Builders are purely analytical — they enumerate the same kernels the
 * functional library executes (cross-checked by tests), but at N = 2^16
 * scale where functional execution would be wasteful.
 */

#ifndef ANAHEIM_TRACE_BUILDERS_H
#define ANAHEIM_TRACE_BUILDERS_H

#include <vector>

#include "kernel.h"

namespace anaheim {

/** Paper-scale trace parameters (Table IV, 32-bit words). */
struct TraceParams {
    size_t n = size_t{1} << 16;
    /** Current number of Q limbs (level). */
    size_t level = 54;
    /** Special prime count. */
    size_t alpha = 14;

    size_t extended() const { return level + alpha; }
    size_t digits() const { return (level + alpha - 1) / alpha; }

    /**
     * Parameters for a given decomposition number D under the paper's
     * total limb budget (log PQ < 1623 with ~24-bit effective primes):
     * D=2: L=45/a=23, D=3: L=51/a=17, D=4: L=54/a=14, D=6: L=58/a=10.
     */
    static TraceParams forDnum(size_t dnum);
};

/** Linear-transform algorithm selector for trace generation. */
enum class TraceLtAlgorithm { Base, Hoisting, MinKS };

/** Which fusion/reordering optimizations the builder bakes in. */
struct TraceOptions {
    /** Fuse element-wise chains into PAccum/CAccum (BasicFuse). */
    bool basicFuse = true;
    /** Fuse the relocated automorphism into accumulation (AutFuse). */
    bool autFuse = true;
};

/** @name Basic CKKS functions (Fig. 2a). */
/// @{
OpSequence buildHAdd(const TraceParams &params);
OpSequence buildPMult(const TraceParams &params);
OpSequence buildHMult(const TraceParams &params,
                      const TraceOptions &options = {});
OpSequence buildHRot(const TraceParams &params,
                     const TraceOptions &options = {});
OpSequence buildRescale(const TraceParams &params);
/// @}

/**
 * Keyswitching sub-trace: ModUp -> KeyMult -> ModDown on one
 * polynomial (the core of HMULT / HROT, Fig. 1 left).
 */
OpSequence buildKeySwitch(const TraceParams &params, const char *phase);

/**
 * Linear transform with K rotations (Fig. 1 right / Fig. 5): the
 * building block of CoeffToSlot/SlotToCoeff and private DNN layers.
 */
OpSequence buildLinearTransform(const TraceParams &params, size_t k,
                                TraceLtAlgorithm algorithm,
                                const TraceOptions &options = {});

/** Full-slot CKKS bootstrapping trace (§VII-A Boot workload).
 *  fftIter selects the linear-transform factorization depth. */
OpSequence buildBootstrap(const TraceParams &params, double fftIter,
                          TraceLtAlgorithm algorithm,
                          const TraceOptions &options = {});

/** Effective levels after bootstrapping for T_boot,eff (§II-C). */
double bootstrapLevelsEff(const TraceParams &params, double fftIter);

} // namespace anaheim

#endif // ANAHEIM_TRACE_BUILDERS_H

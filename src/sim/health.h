/**
 * @file
 * Permanent-fault health monitoring for the PIM datapath.
 *
 * Transient upsets re-sample on every replay, so retry/rollback makes
 * them go away; a permanent fault (stuck-at cells, a dead bank, a
 * broken MMAC lane) deterministically fails every replay into the same
 * site. The HealthMonitor tells the two apart from the error history:
 * it keeps a sliding window of detected-error timestamps per fault
 * site, and when the same site accumulates `permanentThreshold` events
 * inside `windowNs` it is classified permanent and quarantined. The
 * quarantine set is exposed as a ResourceMap that the layout/planner
 * layers use to allocate around the offline resources and that
 * PimKernelModel uses to price the degraded device.
 *
 * Permanent-fault *injection* lives in FaultConfig (permanentBanks /
 * permanentLanes / permanentBankRate); the monitor only ever sees
 * detection events, so a run with health monitoring disabled degrades
 * exactly like the pre-quarantine framework: replay storms into the
 * broken site until the rollback budget dies, then GPU fallback.
 */

#ifndef ANAHEIM_SIM_HEALTH_H
#define ANAHEIM_SIM_HEALTH_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace anaheim {

/** Identity of one quarantinable hardware resource. */
struct FaultSiteId {
    enum class Kind {
        Bank,     ///< one DRAM bank of a die group (storage + its unit)
        MmacLane, ///< one MMAC lane of the die group's units
    };
    Kind kind = Kind::Bank;
    size_t dieGroup = 0;
    size_t index = 0; ///< bank index or lane index within the group

    friend bool operator==(const FaultSiteId &a, const FaultSiteId &b)
    {
        return a.kind == b.kind && a.dieGroup == b.dieGroup &&
               a.index == b.index;
    }
    friend bool operator<(const FaultSiteId &a, const FaultSiteId &b)
    {
        if (a.kind != b.kind)
            return a.kind < b.kind;
        if (a.dieGroup != b.dieGroup)
            return a.dieGroup < b.dieGroup;
        return a.index < b.index;
    }
};

/** Health-monitor policy knobs (nested in ResilienceConfig). */
struct HealthConfig {
    /** Master switch; off reproduces the pre-quarantine framework. */
    bool enabled = false;
    /** Error-history window in simulated ns; events older than the
     *  window no longer count toward the threshold. 0 = unbounded. */
    double windowNs = 0.0;
    /** Detected-error events at one site within the window before it
     *  is classified permanent and quarantined. */
    size_t permanentThreshold = 3;
    /** Healthy-bank fraction below which PIM offload is abandoned:
     *  further quarantine would leave the lockstep device slower than
     *  the GPU, so remaining PIM segments run there instead. */
    double minCapacityFraction = 0.5;
};

/**
 * The quarantine set over a fixed device geometry. Banks are
 * quarantined per die group; because all banks of a group run in
 * lockstep, the group degrades to its *healthy* bank count and the
 * device degrades to the worst group (the other groups idle their
 * excess banks while limbs stay group-partitioned).
 */
struct ResourceMap {
    size_t dieGroups = 0;
    size_t banksPerDieGroup = 0;
    size_t lanesPerUnit = 0;
    std::vector<FaultSiteId> quarantined; ///< sorted, unique

    bool contains(const FaultSiteId &site) const;
    size_t quarantinedBanks() const;
    size_t quarantinedLanes() const;
    size_t quarantinedBanksInGroup(size_t dieGroup) const;
    size_t quarantinedLanesInGroup(size_t dieGroup) const;
    /** Worst-case per-group quarantine (the lockstep bottleneck). */
    size_t maxQuarantinedBanksPerGroup() const;
    size_t maxQuarantinedLanesPerGroup() const;
    /** Offline bank indices of one die group, for the layout. */
    std::vector<size_t> offlineBanksInGroup(size_t dieGroup) const;
    /** Healthy banks / total banks across the device. */
    double bankCapacityFraction() const;
};

class HealthMonitor
{
  public:
    HealthMonitor(const HealthConfig &config, size_t dieGroups,
                  size_t banksPerDieGroup, size_t lanesPerUnit);

    const HealthConfig &config() const { return config_; }
    const ResourceMap &resources() const { return map_; }

    /**
     * Record one detected error attributed to `site` at simulated time
     * `nowNs`. Returns true when this event pushes the site over the
     * permanent threshold, i.e. the site was *newly* quarantined (the
     * caller should remap). Events against an already-quarantined site
     * are ignored.
     */
    bool recordError(const FaultSiteId &site, double nowNs);

    /** Clear a site's error history (e.g. after a scrub pass verified
     *  it clean); quarantined sites stay quarantined. */
    void recordClean(const FaultSiteId &site);

    bool isQuarantined(const FaultSiteId &site) const;
    /** Total error events recorded (including sub-threshold ones). */
    uint64_t errorEvents() const { return events_; }
    /** Healthy-bank capacity left on the device. */
    double capacityFraction() const;
    /** True once capacity fell under config().minCapacityFraction. */
    bool belowCapacityFloor() const;

  private:
    HealthConfig config_;
    ResourceMap map_;
    std::map<FaultSiteId, std::vector<double>> history_;
    uint64_t events_ = 0;
};

/**
 * Deterministic word damage of an access striped over `totalUnits`
 * lockstep units of which `failedUnits` are permanently broken: the
 * proportional share of `words`, and never zero while anything is
 * accessed at all — a stuck-at site cannot be missed by a replay,
 * which is exactly what distinguishes it from a transient. Used for
 * both failed banks (word = codeword access) and failed lanes
 * (word = lane multiply).
 */
uint64_t permanentFaultyWords(size_t words, size_t failedUnits,
                              size_t totalUnits);

} // namespace anaheim

#endif // ANAHEIM_SIM_HEALTH_H

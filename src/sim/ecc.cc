#include "ecc.h"

#include <bit>

namespace anaheim {

namespace {

constexpr bool
isPowerOfTwo(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Codeword positions 1..38 that carry data bits (non-power-of-two). */
constexpr unsigned
dataPosition(unsigned dataIdx)
{
    unsigned pos = 0;
    unsigned seen = 0;
    for (pos = 1; pos < SecDed3932::kCodeBits; ++pos) {
        if (isPowerOfTwo(pos))
            continue;
        if (seen == dataIdx)
            return pos;
        ++seen;
    }
    return 0; // unreachable for dataIdx < 32
}

struct PositionTables {
    unsigned dataPos[SecDed3932::kDataBits] = {};
    /** For each codeword position, the data index it carries or ~0u. */
    unsigned dataIdxAt[SecDed3932::kCodeBits] = {};

    constexpr PositionTables()
    {
        for (unsigned pos = 0; pos < SecDed3932::kCodeBits; ++pos)
            dataIdxAt[pos] = ~0u;
        for (unsigned i = 0; i < SecDed3932::kDataBits; ++i) {
            dataPos[i] = dataPosition(i);
            dataIdxAt[dataPos[i]] = i;
        }
    }
};

constexpr PositionTables kTables;

/** Hamming syndrome over positions 1..38 (6 bits). */
uint64_t
syndromeOf(uint64_t codeword)
{
    uint64_t syndrome = 0;
    for (unsigned pos = 1; pos < SecDed3932::kCodeBits; ++pos) {
        if ((codeword >> pos) & 1)
            syndrome ^= pos;
    }
    return syndrome;
}

} // namespace

const char *
eccOutcomeName(EccOutcome outcome)
{
    switch (outcome) {
      case EccOutcome::Clean: return "Clean";
      case EccOutcome::Corrected: return "Corrected";
      case EccOutcome::Uncorrectable: return "Uncorrectable";
    }
    return "Unknown";
}

uint64_t
SecDed3932::encode(uint32_t data)
{
    uint64_t codeword = 0;
    for (unsigned i = 0; i < kDataBits; ++i) {
        if ((data >> i) & 1)
            codeword |= uint64_t{1} << kTables.dataPos[i];
    }
    // Parity bits at power-of-two positions zero out the syndrome.
    const uint64_t syndrome = syndromeOf(codeword);
    for (unsigned p = 1; p < kCodeBits; p <<= 1) {
        if (syndrome & p)
            codeword |= uint64_t{1} << p;
    }
    // Overall parity (position 0): even parity over the full codeword.
    if (std::popcount(codeword) & 1)
        codeword |= 1;
    return codeword;
}

uint32_t
SecDed3932::extractData(uint64_t codeword)
{
    uint32_t data = 0;
    for (unsigned i = 0; i < kDataBits; ++i) {
        if ((codeword >> kTables.dataPos[i]) & 1)
            data |= uint32_t{1} << i;
    }
    return data;
}

EccDecodeResult
SecDed3932::decode(uint64_t codeword)
{
    codeword &= (uint64_t{1} << kCodeBits) - 1;
    const uint64_t syndrome = syndromeOf(codeword);
    const bool parityOdd = (std::popcount(codeword) & 1) != 0;

    EccDecodeResult result;
    if (syndrome == 0 && !parityOdd) {
        result.data = extractData(codeword);
        result.outcome = EccOutcome::Clean;
        return result;
    }
    if (parityOdd) {
        // Single-bit error; syndrome 0 means the parity bit itself.
        if (syndrome < kCodeBits) {
            const uint64_t corrected =
                codeword ^ (uint64_t{1} << syndrome);
            result.data = extractData(corrected);
            result.outcome = EccOutcome::Corrected;
            return result;
        }
        // Syndrome points outside the codeword: only reachable with
        // >= 3 flipped bits. The decoder cannot repair it.
        result.data = extractData(codeword);
        result.outcome = EccOutcome::Uncorrectable;
        return result;
    }
    // Nonzero syndrome with even parity: double-bit error.
    result.data = extractData(codeword);
    result.outcome = EccOutcome::Uncorrectable;
    return result;
}

} // namespace anaheim

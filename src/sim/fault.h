/**
 * @file
 * Deterministic, seedable fault injection for the PIM datapath.
 *
 * Two injection modes, both reproducible from a single seed:
 *
 *  - BER-driven: every bit of a codeword read flips independently with
 *    probability `ber`. The per-bit draws are keyed by
 *    (seed, limb, word, epoch), so the same seed reproduces the same
 *    fault sites regardless of read order, and bumping the epoch
 *    models a replay in which transient faults re-sample (a retried
 *    read usually succeeds, like a real transient upset).
 *  - Targeted: explicit (limb, word, bit-mask) faults, either
 *    transient (XOR) or stuck-at (persist across epochs by
 *    construction). Used by tests to place exactly one or two flipped
 *    bits under the ECC decoder.
 *
 * Faults land on four disjoint *sites* of the datapath, each with its
 * own coordinate namespace (FaultSite / siteWord): operand reads,
 * coherence write-backs, the post-multiply MMAC lane datapath (no ECC
 * reaches it: every lane flip is silent until a ciphertext checksum
 * catches it), and DRAM cell retention decay sampled per refresh
 * window. Storage sites share `ber`; the lane and retention sites
 * carry their own rates (`laneBer`, `retentionBerPerWindow`).
 *
 * The model also exposes an event-level view for the timing framework
 * (FaultModel::sampleEvents / sampleLaneEvents / sampleRetention):
 * instead of corrupting real words, it draws how many of an op's
 * codeword accesses suffered single-/multi-bit faults,
 * deterministically per (seed, stream id), so
 * AnaheimFramework::execute can charge retries, scrubs and rollbacks
 * without running functional data through the trace.
 */

#ifndef ANAHEIM_SIM_FAULT_H
#define ANAHEIM_SIM_FAULT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anaheim {

enum class FaultKind {
    Transient,  ///< XOR the mask into the read (re-read may differ)
    StuckAtZero,///< masked cells always read 0
    StuckAtOne, ///< masked cells always read 1
};

/**
 * Distinct fault-site classes of the PIM datapath. Each site tags the
 * high bits of the word coordinate (siteWord), so a read, a write-back
 * and a lane operation at the same array offset never share fault
 * sites. OperandRead is tag 0: read-path coordinates are unchanged
 * from the original read-only fault model, so existing seeds
 * reproduce the same read-fault sites.
 */
enum class FaultSite : uint64_t {
    OperandRead = 0, ///< operand word leaving the array into the unit
    WriteBack = 1,   ///< result word riding the write drivers back
    MmacLane = 2,    ///< post-multiply transient flip inside the lane
    Retention = 3,   ///< cell decay between refreshes
};

/** Fold a fault site into a word coordinate (bits 56+ carry the
 *  site tag; array offsets stay below 2^56). */
constexpr size_t
siteWord(FaultSite site, size_t word)
{
    return (static_cast<size_t>(site) << 56) | word;
}

/** One deliberately placed fault. */
struct TargetedFault {
    size_t limb = 0;
    size_t word = 0;       ///< word index within the limb
    uint64_t bitMask = 0;  ///< codeword bits affected
    FaultKind kind = FaultKind::Transient;
};

/** A permanently failed DRAM bank: every codeword access striped onto
 *  it is multi-bit corrupt, on every attempt and every generation. */
struct PermanentBankFault {
    size_t dieGroup = 0;
    size_t bank = 0; ///< bank index within the die group
};

/** A permanently broken MMAC lane: every modular multiply routed
 *  through it is silently wrong (no ECC on the 28-bit datapath). */
struct PermanentLaneFault {
    size_t dieGroup = 0;
    size_t lane = 0; ///< lane index within the group's units
};

struct FaultConfig {
    /** Raw per-bit error probability per codeword access on the
     *  storage sites (operand reads and write-backs). */
    double ber = 0.0;
    /** Per-bit transient-flip probability per MMAC lane operation on
     *  the 28-bit post-multiply datapath. No ECC covers it. */
    double laneBer = 0.0;
    /** Per-bit decay probability per refresh window for resident
     *  cells (the Retention site). */
    double retentionBerPerWindow = 0.0;
    /** Seed for the fault-site PRNG; identical seeds reproduce
     *  identical fault sites. */
    uint64_t seed = 0x0ddfa117u;
    std::vector<TargetedFault> targets;

    /** Explicitly dead banks/lanes (always failed, any seed). */
    std::vector<PermanentBankFault> permanentBanks;
    std::vector<PermanentLaneFault> permanentLanes;
    /** Monte-Carlo permanent-failure probability per bank, sampled
     *  deterministically per (seed, die group, bank) by
     *  FaultModel::samplePermanentBanks — the fabrication/wear-out
     *  axis of a degradation campaign. */
    double permanentBankRate = 0.0;

    bool enabled() const
    {
        return ber > 0.0 || laneBer > 0.0 || retentionBerPerWindow > 0.0 ||
               !targets.empty() || !permanentBanks.empty() ||
               !permanentLanes.empty() || permanentBankRate > 0.0;
    }
};

/** Per-codeword fault-class counts for one sampled read stream. */
struct FaultEventCounts {
    uint64_t faulty = 0;    ///< codewords with >= 1 flipped bit
    uint64_t singleBit = 0; ///< exactly one flipped bit (SEC repairs)
    uint64_t multiBit = 0;  ///< >= 2 flipped bits (DED territory)
};

class FaultModel
{
  public:
    explicit FaultModel(FaultConfig config);

    const FaultConfig &config() const { return config_; }
    bool enabled() const { return config_.enabled(); }

    /**
     * Corrupt a `bits`-wide codeword access at (limb, word) during
     * `epoch` with the storage BER. Deterministic in
     * (seed, limb, word, epoch); pure. Callers distinguish reads from
     * write-backs by folding a FaultSite tag into `word` (siteWord).
     */
    uint64_t corrupt(uint64_t codeword, size_t limb, size_t word,
                     uint64_t epoch, unsigned bits) const;

    /**
     * Transient flip on the 28-bit post-multiply lane datapath at
     * (limb, word = lane-op index) during `epoch`, at `laneBer`.
     * Targeted faults aimed at siteWord(MmacLane, word) also land
     * here, so tests can place exact lane upsets.
     */
    uint32_t corruptLane(uint32_t value, size_t limb, size_t word,
                         uint64_t epoch) const;

    /**
     * Event-level draw: of `words` codeword accesses in stream
     * `streamId` (e.g. op index × retry attempt), how many were faulty
     * and how. Deterministic in (seed, streamId); does not mutate the
     * model.
     */
    FaultEventCounts sampleEvents(size_t words, uint64_t streamId) const;

    /**
     * Event-level lane draw: of `laneOps` modular multiplies in stream
     * `streamId`, how many suffered a post-multiply flip. Only
     * `faulty` is populated: the lane datapath has no ECC, so there is
     * no single/multi split — every hit is silent at the unit.
     */
    FaultEventCounts sampleLaneEvents(size_t laneOps,
                                      uint64_t streamId) const;

    /**
     * Event-level retention draw for one refresh `window` over `words`
     * resident codewords: single-bit decays are scrub/ECC-correctable,
     * multi-bit ones are uncorrectable data loss. Deterministic in
     * (seed, window).
     */
    FaultEventCounts sampleRetention(uint64_t window, size_t words) const;

    /**
     * The permanently failed banks of a `dieGroups` x `banksPerGroup`
     * device: the explicitly configured ones plus a deterministic
     * per-(seed, die group, bank) draw at `permanentBankRate`. Sorted
     * and de-duplicated; independent of epoch/stream by design — a
     * dead bank fails every replay.
     */
    std::vector<PermanentBankFault>
    samplePermanentBanks(size_t dieGroups, size_t banksPerGroup) const;

    /** P(a 39-bit codeword has >= 1 flipped bit) at the configured
     *  BER. */
    double wordFaultProbability() const;

  private:
    uint64_t corruptAtRate(uint64_t codeword, double rate, size_t limb,
                           size_t word, uint64_t epoch,
                           unsigned bits) const;

    FaultConfig config_;
};

} // namespace anaheim

#endif // ANAHEIM_SIM_FAULT_H

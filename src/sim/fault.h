/**
 * @file
 * Deterministic, seedable fault injection for the PIM datapath.
 *
 * Two injection modes, both reproducible from a single seed:
 *
 *  - BER-driven: every bit of a codeword read flips independently with
 *    probability `ber`. The per-bit draws are keyed by
 *    (seed, limb, word, epoch), so the same seed reproduces the same
 *    fault sites regardless of read order, and bumping the epoch
 *    models a replay in which transient faults re-sample (a retried
 *    read usually succeeds, like a real transient upset).
 *  - Targeted: explicit (limb, word, bit-mask) faults, either
 *    transient (XOR) or stuck-at (persist across epochs by
 *    construction). Used by tests to place exactly one or two flipped
 *    bits under the ECC decoder.
 *
 * The model also exposes an event-level view for the timing framework
 * (FaultModel::sampleEvents): instead of corrupting real words, it
 * draws how many of an op's codeword reads suffered single-/multi-bit
 * faults, deterministically per (seed, stream id), so
 * AnaheimFramework::execute can charge retries and fall back to the
 * GPU without running functional data through the trace.
 */

#ifndef ANAHEIM_SIM_FAULT_H
#define ANAHEIM_SIM_FAULT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anaheim {

enum class FaultKind {
    Transient,  ///< XOR the mask into the read (re-read may differ)
    StuckAtZero,///< masked cells always read 0
    StuckAtOne, ///< masked cells always read 1
};

/** One deliberately placed fault. */
struct TargetedFault {
    size_t limb = 0;
    size_t word = 0;       ///< word index within the limb
    uint64_t bitMask = 0;  ///< codeword bits affected
    FaultKind kind = FaultKind::Transient;
};

struct FaultConfig {
    /** Raw per-bit error probability per codeword read. */
    double ber = 0.0;
    /** Seed for the fault-site PRNG; identical seeds reproduce
     *  identical fault sites. */
    uint64_t seed = 0x0ddfa117u;
    std::vector<TargetedFault> targets;

    bool enabled() const { return ber > 0.0 || !targets.empty(); }
};

/** Per-codeword fault-class counts for one sampled read stream. */
struct FaultEventCounts {
    uint64_t faulty = 0;    ///< codewords with >= 1 flipped bit
    uint64_t singleBit = 0; ///< exactly one flipped bit (SEC repairs)
    uint64_t multiBit = 0;  ///< >= 2 flipped bits (DED territory)
};

class FaultModel
{
  public:
    explicit FaultModel(FaultConfig config);

    const FaultConfig &config() const { return config_; }
    bool enabled() const { return config_.enabled(); }

    /**
     * Corrupt a `bits`-wide codeword read at (limb, word) during
     * `epoch`. Deterministic in (seed, limb, word, epoch); pure.
     */
    uint64_t corrupt(uint64_t codeword, size_t limb, size_t word,
                     uint64_t epoch, unsigned bits) const;

    /**
     * Event-level draw: of `words` codeword reads in stream `streamId`
     * (e.g. op index × retry attempt), how many were faulty and how.
     * Deterministic in (seed, streamId); does not mutate the model.
     */
    FaultEventCounts sampleEvents(size_t words, uint64_t streamId) const;

    /** P(a 39-bit codeword has >= 1 flipped bit) at the configured
     *  BER. */
    double wordFaultProbability() const;

  private:
    FaultConfig config_;
};

} // namespace anaheim

#endif // ANAHEIM_SIM_FAULT_H

#include "health.h"

#include <algorithm>

#include "common/status.h"

namespace anaheim {

bool
ResourceMap::contains(const FaultSiteId &site) const
{
    return std::binary_search(quarantined.begin(), quarantined.end(),
                              site);
}

size_t
ResourceMap::quarantinedBanks() const
{
    size_t count = 0;
    for (const FaultSiteId &site : quarantined)
        count += site.kind == FaultSiteId::Kind::Bank ? 1 : 0;
    return count;
}

size_t
ResourceMap::quarantinedLanes() const
{
    return quarantined.size() - quarantinedBanks();
}

size_t
ResourceMap::quarantinedBanksInGroup(size_t dieGroup) const
{
    size_t count = 0;
    for (const FaultSiteId &site : quarantined) {
        if (site.kind == FaultSiteId::Kind::Bank &&
            site.dieGroup == dieGroup)
            ++count;
    }
    return count;
}

size_t
ResourceMap::quarantinedLanesInGroup(size_t dieGroup) const
{
    size_t count = 0;
    for (const FaultSiteId &site : quarantined) {
        if (site.kind == FaultSiteId::Kind::MmacLane &&
            site.dieGroup == dieGroup)
            ++count;
    }
    return count;
}

size_t
ResourceMap::maxQuarantinedBanksPerGroup() const
{
    size_t worst = 0;
    for (size_t g = 0; g < dieGroups; ++g)
        worst = std::max(worst, quarantinedBanksInGroup(g));
    return worst;
}

size_t
ResourceMap::maxQuarantinedLanesPerGroup() const
{
    size_t worst = 0;
    for (size_t g = 0; g < dieGroups; ++g)
        worst = std::max(worst, quarantinedLanesInGroup(g));
    return worst;
}

std::vector<size_t>
ResourceMap::offlineBanksInGroup(size_t dieGroup) const
{
    std::vector<size_t> banks;
    for (const FaultSiteId &site : quarantined) {
        if (site.kind == FaultSiteId::Kind::Bank &&
            site.dieGroup == dieGroup)
            banks.push_back(site.index);
    }
    return banks;
}

double
ResourceMap::bankCapacityFraction() const
{
    const size_t total = dieGroups * banksPerDieGroup;
    if (total == 0)
        return 1.0;
    const size_t offline = std::min(quarantinedBanks(), total);
    return static_cast<double>(total - offline) /
           static_cast<double>(total);
}

HealthMonitor::HealthMonitor(const HealthConfig &config,
                             size_t dieGroups, size_t banksPerDieGroup,
                             size_t lanesPerUnit)
    : config_(config)
{
    ANAHEIM_CHECK(config_.permanentThreshold >= 1, InvalidArgument,
                  "permanent threshold must be >= 1, got ",
                  config_.permanentThreshold);
    ANAHEIM_CHECK(config_.windowNs >= 0.0, InvalidArgument,
                  "health window must be >= 0 ns, got ",
                  config_.windowNs);
    ANAHEIM_CHECK(config_.minCapacityFraction >= 0.0 &&
                      config_.minCapacityFraction <= 1.0,
                  InvalidArgument,
                  "capacity floor must be in [0, 1], got ",
                  config_.minCapacityFraction);
    map_.dieGroups = dieGroups;
    map_.banksPerDieGroup = banksPerDieGroup;
    map_.lanesPerUnit = lanesPerUnit;
}

bool
HealthMonitor::recordError(const FaultSiteId &site, double nowNs)
{
    ANAHEIM_CHECK(site.dieGroup < map_.dieGroups, InvalidArgument,
                  "fault site die group ", site.dieGroup,
                  " outside the device's ", map_.dieGroups);
    const size_t span = site.kind == FaultSiteId::Kind::Bank
                            ? map_.banksPerDieGroup
                            : map_.lanesPerUnit;
    ANAHEIM_CHECK(site.index < span, InvalidArgument,
                  "fault site index ", site.index,
                  " outside the resource span ", span);
    if (map_.contains(site))
        return false;
    ++events_;
    std::vector<double> &hits = history_[site];
    hits.push_back(nowNs);
    if (config_.windowNs > 0.0) {
        const double horizon = nowNs - config_.windowNs;
        hits.erase(std::remove_if(hits.begin(), hits.end(),
                                  [&](double t) { return t < horizon; }),
                   hits.end());
    }
    if (hits.size() < config_.permanentThreshold)
        return false;
    // Classified permanent: quarantine the site (sorted insert keeps
    // ResourceMap::contains O(log n)) and drop its history.
    map_.quarantined.insert(
        std::upper_bound(map_.quarantined.begin(),
                         map_.quarantined.end(), site),
        site);
    history_.erase(site);
    return true;
}

void
HealthMonitor::recordClean(const FaultSiteId &site)
{
    history_.erase(site);
}

bool
HealthMonitor::isQuarantined(const FaultSiteId &site) const
{
    return map_.contains(site);
}

double
HealthMonitor::capacityFraction() const
{
    return map_.bankCapacityFraction();
}

bool
HealthMonitor::belowCapacityFloor() const
{
    return capacityFraction() < config_.minCapacityFraction;
}

uint64_t
permanentFaultyWords(size_t words, size_t failedUnits,
                     size_t totalUnits)
{
    if (failedUnits == 0 || words == 0 || totalUnits == 0)
        return 0;
    const size_t failed = std::min(failedUnits, totalUnits);
    const uint64_t share =
        static_cast<uint64_t>(static_cast<double>(words) *
                              static_cast<double>(failed) /
                              static_cast<double>(totalUnits));
    return std::max<uint64_t>(share, 1);
}

} // namespace anaheim

#include "readpath.h"

namespace anaheim {

PimReadPath::PimReadPath(const FaultConfig &faults, bool eccEnabled)
    : model_(faults), ecc_(eccEnabled)
{
}

uint32_t
PimReadPath::readWord(uint32_t stored, size_t word)
{
    ++counters_.wordsRead;
    if (!model_.enabled())
        return stored;

    if (!ecc_) {
        // Raw datapath: faults land directly on the 32 data bits and
        // nothing detects them.
        const uint32_t read = static_cast<uint32_t>(model_.corrupt(
            stored, limb_, word, epoch_, SecDed3932::kDataBits));
        if (read != stored) {
            ++counters_.faultyWords;
            ++counters_.silent;
        }
        return read;
    }

    const uint64_t codeword = SecDed3932::encode(stored);
    const uint64_t rawRead = model_.corrupt(codeword, limb_, word, epoch_,
                                            SecDed3932::kCodeBits);
    if (rawRead == codeword)
        return stored;
    ++counters_.faultyWords;

    const EccDecodeResult decoded = SecDed3932::decode(rawRead);
    switch (decoded.outcome) {
      case EccOutcome::Clean:
        // >= 2 flips aliased to a valid codeword: silent corruption.
        if (decoded.data != stored)
            ++counters_.silent;
        break;
      case EccOutcome::Corrected:
        ++counters_.corrected;
        // A >= 3-flip pattern can masquerade as a single-bit error and
        // "correct" to the wrong word.
        if (decoded.data != stored)
            ++counters_.silent;
        break;
      case EccOutcome::Uncorrectable:
        ++counters_.uncorrectable;
        uncorrectableSeen_ = true;
        break;
    }
    return decoded.data;
}

} // namespace anaheim

#include "readpath.h"

namespace anaheim {

PimDataPath::PimDataPath(const FaultConfig &faults, bool eccEnabled)
    : model_(faults), ecc_(eccEnabled)
{
}

uint32_t
PimDataPath::classifyStorageFault(uint64_t rawRead, uint32_t stored)
{
    ++counters_.faultyWords;
    const EccDecodeResult decoded = SecDed3932::decode(rawRead);
    switch (decoded.outcome) {
      case EccOutcome::Clean:
        // >= 2 flips aliased to a valid codeword: silent corruption.
        if (decoded.data != stored)
            ++counters_.silent;
        break;
      case EccOutcome::Corrected:
        ++counters_.corrected;
        // A >= 3-flip pattern can masquerade as a single-bit error and
        // "correct" to the wrong word.
        if (decoded.data != stored)
            ++counters_.silent;
        break;
      case EccOutcome::Uncorrectable:
        ++counters_.uncorrectable;
        uncorrectableSeen_ = true;
        break;
    }
    return decoded.data;
}

uint32_t
PimDataPath::readWord(uint32_t stored, size_t word)
{
    ++counters_.wordsRead;
    if (!model_.enabled())
        return stored;

    if (!ecc_) {
        // Raw datapath: faults land directly on the 32 data bits and
        // nothing detects them.
        const uint32_t read = static_cast<uint32_t>(model_.corrupt(
            stored, limb_, word, epoch_, SecDed3932::kDataBits));
        if (read != stored) {
            ++counters_.faultyWords;
            ++counters_.silent;
        }
        return read;
    }

    const uint64_t codeword = SecDed3932::encode(stored);
    const uint64_t rawRead = model_.corrupt(codeword, limb_, word, epoch_,
                                            SecDed3932::kCodeBits);
    if (rawRead == codeword)
        return stored;
    return classifyStorageFault(rawRead, stored);
}

uint32_t
PimDataPath::writeWord(uint32_t value, size_t word)
{
    ++counters_.wordsWritten;
    if (!model_.enabled())
        return value;
    const size_t site = siteWord(FaultSite::WriteBack, word);

    if (!ecc_) {
        const uint32_t stored = static_cast<uint32_t>(model_.corrupt(
            value, limb_, site, epoch_, SecDed3932::kDataBits));
        if (stored != value) {
            ++counters_.faultyWords;
            ++counters_.silent;
        }
        return stored;
    }

    // ECC encode happens before the write drivers: a driver fault
    // corrupts the stored codeword and the *next read's* decode
    // classifies it. The functional model folds that future decode
    // into the store.
    const uint64_t codeword = SecDed3932::encode(value);
    const uint64_t rawStored = model_.corrupt(
        codeword, limb_, site, epoch_, SecDed3932::kCodeBits);
    if (rawStored == codeword)
        return value;
    return classifyStorageFault(rawStored, value);
}

uint32_t
PimDataPath::laneValue(uint32_t value, size_t word)
{
    ++counters_.laneOps;
    if (!model_.enabled())
        return value;
    const uint32_t out = model_.corruptLane(value, limb_, word, epoch_);
    if (out != value) {
        ++counters_.laneFaults;
        ++counters_.silent;
    }
    return out;
}

} // namespace anaheim

/**
 * @file
 * On-die SEC-DED (39,32) ECC model for the PIM word-read boundary.
 *
 * Every PIM operand read rides a raw DRAM array, so Anaheim's MMAC
 * datapath inherits DRAM's bit-error exposure. Commodity HBM/DDR5
 * answer with on-die single-error-correct / double-error-detect codes
 * at 32-bit granularity; we model the standard extended-Hamming
 * construction: a (38,32) Hamming code (6 parity bits at power-of-two
 * positions 1,2,4,8,16,32) plus one overall parity bit at position 0,
 * giving a 39-bit codeword per 32-bit stored word.
 *
 * Decode semantics:
 *  - syndrome 0, overall parity even  -> clean;
 *  - overall parity odd               -> single-bit error, corrected
 *    (syndrome names the position; syndrome 0 means the overall parity
 *    bit itself flipped);
 *  - syndrome != 0, parity even       -> double-bit error, detected
 *    but uncorrectable.
 *
 * Three or more flipped bits can alias to any of the three outcomes;
 * callers that know the ground truth (the fault model does) classify
 * those as silent corruption.
 */

#ifndef ANAHEIM_SIM_ECC_H
#define ANAHEIM_SIM_ECC_H

#include <cstddef>
#include <cstdint>

namespace anaheim {

enum class EccOutcome {
    Clean,         ///< syndrome clear, word accepted as-is
    Corrected,     ///< single-bit error corrected
    Uncorrectable, ///< double-bit error detected, data not trustworthy
};

const char *eccOutcomeName(EccOutcome outcome);

struct EccDecodeResult {
    uint32_t data = 0; ///< best-effort decoded word
    EccOutcome outcome = EccOutcome::Clean;
};

/** Stateless SEC-DED (39,32) encoder/decoder. */
class SecDed3932
{
  public:
    static constexpr unsigned kDataBits = 32;
    static constexpr unsigned kCodeBits = 39;

    /** Expand a 32-bit word into its 39-bit codeword. */
    static uint64_t encode(uint32_t data);

    /** Decode a (possibly corrupted) codeword: correct single-bit
     *  errors, flag double-bit errors. */
    static EccDecodeResult decode(uint64_t codeword);

    /** The 32 data bits of a codeword, uncorrected (the raw view a
     *  no-ECC datapath would deliver). */
    static uint32_t extractData(uint64_t codeword);
};

} // namespace anaheim

#endif // ANAHEIM_SIM_ECC_H

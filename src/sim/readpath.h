/**
 * @file
 * The resilient word datapath for PimFunctionalUnit.
 *
 * Every operand word a PIM instruction consumes (array reads and
 * data-buffer entries alike) passes through readWord(), every result
 * word it stores passes through writeWord(), and every post-multiply
 * lane value can pass through laneValue(). Together they model the
 * full on-die pipeline: ECC-encode the stored word, ride the raw
 * array (or the write drivers, or the bare 28-bit MMAC datapath)
 * through the fault model, SEC-DED-decode on the way into or out of
 * the unit. Counters classify each access against the ground truth
 * the simulator knows:
 *
 *  - corrected:      single-bit upset repaired, data exact;
 *  - uncorrectable:  detected double-bit upset, data poisoned (and
 *    uncorrectableSeen() latches so the caller can retry/fall back);
 *  - silent:         corrupt data delivered as clean — every faulty
 *    word with ECC off, >= 3-bit aliasing with ECC on, and every
 *    MMAC lane flip (no code covers the compute datapath; only a
 *    ciphertext-level checksum can catch those downstream).
 *
 * A write-back fault is latent in real hardware — the corrupted
 * codeword sits in the array until the next read. The functional
 * model returns plain words, so writeWord folds the eventual
 * read-side ECC decode into the store: the classification is the one
 * the next consumer of that word would observe.
 *
 * With no datapath attached, PimFunctionalUnit reads and writes words
 * directly: the fault-free golden path is bitwise identical to the
 * pre-fault-model code and pays no overhead.
 */

#ifndef ANAHEIM_SIM_READPATH_H
#define ANAHEIM_SIM_READPATH_H

#include <cstddef>
#include <cstdint>

#include "ecc.h"
#include "fault.h"

namespace anaheim {

/** Classification counters maintained by PimDataPath. */
struct ReadPathCounters {
    uint64_t wordsRead = 0;
    uint64_t wordsWritten = 0;
    uint64_t laneOps = 0;        ///< lane values routed through laneValue
    uint64_t faultyWords = 0;    ///< storage codewords with >= 1 flip
    uint64_t corrected = 0;      ///< SEC repaired, data exact
    uint64_t uncorrectable = 0;  ///< DED flagged, data poisoned
    uint64_t silent = 0;         ///< corrupt data delivered as clean
    uint64_t laneFaults = 0;     ///< post-multiply flips (all silent)
};

/**
 * Word coordinate of element `i` of the instruction's operand slot
 * `slot` (a, b, c, d, ... = 0, 1, 2, 3, ...). Distinct slots live at
 * distinct array addresses, so they never share fault sites; reads
 * and write-backs of the same coordinate are separated by the
 * FaultSite tag (siteWord).
 */
constexpr size_t
operandWord(size_t slot, size_t i)
{
    return (slot << 24) | i;
}

class PimDataPath
{
  public:
    PimDataPath(const FaultConfig &faults, bool eccEnabled);

    bool eccEnabled() const { return ecc_; }
    const FaultModel &faultModel() const { return model_; }

    /** Set the limb coordinate of subsequent accesses (the functional
     *  unit processes one limb at a time). */
    void setLimb(size_t limb) { limb_ = limb; }
    size_t limb() const { return limb_; }

    /** Advance the replay epoch: transient BER faults re-sample,
     *  stuck-at targeted faults persist. Models a retried segment. */
    void nextEpoch() { ++epoch_; }
    uint64_t epoch() const { return epoch_; }

    /** Read one stored word at `word` within the current limb through
     *  fault injection and (optionally) SEC-DED decode. */
    uint32_t readWord(uint32_t stored, size_t word);

    /**
     * Store one result word at `word` through the write drivers:
     * faults land on the freshly encoded codeword (WriteBack site)
     * and the returned value reflects what the next read's ECC decode
     * would deliver.
     */
    uint32_t writeWord(uint32_t value, size_t word);

    /**
     * Route one post-multiply lane value through the MMAC transient
     * fault site (`word` is a per-instruction lane-op index). No ECC:
     * any flip is silent corruption at the unit.
     */
    uint32_t laneValue(uint32_t value, size_t word);

    const ReadPathCounters &counters() const { return counters_; }
    void resetCounters() { counters_ = ReadPathCounters{}; }

    /** True once any access since the last clear was uncorrectable. */
    bool uncorrectableSeen() const { return uncorrectableSeen_; }
    void clearUncorrectableSeen() { uncorrectableSeen_ = false; }

  private:
    /** Shared ECC-decode classification for read/write accesses whose
     *  raw codeword differs from the clean one. */
    uint32_t classifyStorageFault(uint64_t rawRead, uint32_t stored);

    FaultModel model_;
    bool ecc_;
    size_t limb_ = 0;
    uint64_t epoch_ = 0;
    ReadPathCounters counters_;
    bool uncorrectableSeen_ = false;
};

/** The original read-only name; the class now covers the full
 *  datapath but existing read-path call sites stay valid. */
using PimReadPath = PimDataPath;

} // namespace anaheim

#endif // ANAHEIM_SIM_READPATH_H

/**
 * @file
 * The resilient word-read path for PimFunctionalUnit.
 *
 * Every operand word a PIM instruction consumes (array reads and
 * data-buffer entries alike) passes through readWord(), which models
 * the full on-die pipeline: ECC-encode the stored word, ride the raw
 * array through the fault model, SEC-DED-decode on the way into the
 * MMAC unit. Counters classify each read against the ground truth the
 * simulator knows:
 *
 *  - corrected:      single-bit upset repaired, data exact;
 *  - uncorrectable:  detected double-bit upset, data poisoned (and
 *    uncorrectableSeen() latches so the caller can retry/fall back);
 *  - silent:         corrupt data delivered as clean — every faulty
 *    word with ECC off, and >= 3-bit aliasing with ECC on.
 *
 * With no read path attached, PimFunctionalUnit reads words directly:
 * the BER = 0 golden path is bitwise identical to the pre-fault-model
 * code and pays no overhead.
 */

#ifndef ANAHEIM_SIM_READPATH_H
#define ANAHEIM_SIM_READPATH_H

#include <cstddef>
#include <cstdint>

#include "ecc.h"
#include "fault.h"

namespace anaheim {

/** Classification counters maintained by PimReadPath. */
struct ReadPathCounters {
    uint64_t wordsRead = 0;
    uint64_t faultyWords = 0;    ///< codewords with >= 1 flipped bit
    uint64_t corrected = 0;      ///< SEC repaired, data exact
    uint64_t uncorrectable = 0;  ///< DED flagged, data poisoned
    uint64_t silent = 0;         ///< corrupt data delivered as clean
};

/**
 * Word coordinate of element `i` of the instruction's operand slot
 * `slot` (a, b, c, d, ... = 0, 1, 2, 3, ...). Distinct slots live at
 * distinct array addresses, so they never share fault sites.
 */
constexpr size_t
operandWord(size_t slot, size_t i)
{
    return (slot << 24) | i;
}

class PimReadPath
{
  public:
    PimReadPath(const FaultConfig &faults, bool eccEnabled);

    bool eccEnabled() const { return ecc_; }
    const FaultModel &faultModel() const { return model_; }

    /** Set the limb coordinate of subsequent reads (the functional
     *  unit processes one limb at a time). */
    void setLimb(size_t limb) { limb_ = limb; }
    size_t limb() const { return limb_; }

    /** Advance the replay epoch: transient BER faults re-sample,
     *  stuck-at targeted faults persist. Models a retried read. */
    void nextEpoch() { ++epoch_; }
    uint64_t epoch() const { return epoch_; }

    /** Read one stored word at `word` within the current limb through
     *  fault injection and (optionally) SEC-DED decode. */
    uint32_t readWord(uint32_t stored, size_t word);

    const ReadPathCounters &counters() const { return counters_; }
    void resetCounters() { counters_ = ReadPathCounters{}; }

    /** True once any read since the last clear was uncorrectable. */
    bool uncorrectableSeen() const { return uncorrectableSeen_; }
    void clearUncorrectableSeen() { uncorrectableSeen_ = false; }

  private:
    FaultModel model_;
    bool ecc_;
    size_t limb_ = 0;
    uint64_t epoch_ = 0;
    ReadPathCounters counters_;
    bool uncorrectableSeen_ = false;
};

} // namespace anaheim

#endif // ANAHEIM_SIM_READPATH_H

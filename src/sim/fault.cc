#include "fault.h"

#include <cmath>

#include "common/rng.h"
#include "common/status.h"
#include "ecc.h"

namespace anaheim {

namespace {

/** splitmix64 finalizer: decorrelates structured coordinate inputs. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
siteKey(uint64_t seed, size_t limb, size_t word, uint64_t epoch)
{
    uint64_t key = mix(seed);
    key = mix(key ^ (static_cast<uint64_t>(limb) + 1));
    key = mix(key ^ (static_cast<uint64_t>(word) + 1));
    key = mix(key ^ (epoch + 1));
    return key;
}

/**
 * Deterministic draw of a count with the given expectation: Knuth
 * Poisson sampling for small expectations, a clamped normal
 * approximation for large ones (both fed by the caller's Rng).
 */
uint64_t
sampleCount(Rng &rng, double expected)
{
    if (expected <= 0.0)
        return 0;
    if (expected < 64.0) {
        const double limit = std::exp(-expected);
        uint64_t count = 0;
        double product = rng.uniformReal();
        while (product > limit) {
            ++count;
            product *= rng.uniformReal();
        }
        return count;
    }
    const double draw = expected + std::sqrt(expected) * rng.gaussian();
    return draw <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(draw));
}

} // namespace

FaultModel::FaultModel(FaultConfig config) : config_(std::move(config))
{
    ANAHEIM_CHECK(config_.ber >= 0.0 && config_.ber < 1.0,
                  InvalidArgument,
                  "bit-error rate must be in [0, 1), got ", config_.ber);
    for (const TargetedFault &target : config_.targets) {
        ANAHEIM_CHECK(target.bitMask != 0, InvalidArgument,
                      "targeted fault with empty bit mask at limb ",
                      target.limb, ", word ", target.word);
    }
}

uint64_t
FaultModel::corrupt(uint64_t codeword, size_t limb, size_t word,
                    uint64_t epoch, unsigned bits) const
{
    if (config_.ber > 0.0) {
        Rng rng(siteKey(config_.seed, limb, word, epoch));
        for (unsigned bit = 0; bit < bits; ++bit) {
            if (rng.uniformReal() < config_.ber)
                codeword ^= uint64_t{1} << bit;
        }
    }
    const uint64_t width =
        bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    for (const TargetedFault &target : config_.targets) {
        if (target.limb != limb || target.word != word)
            continue;
        const uint64_t mask = target.bitMask & width;
        switch (target.kind) {
          case FaultKind::Transient:
            codeword ^= mask;
            break;
          case FaultKind::StuckAtZero:
            codeword &= ~mask;
            break;
          case FaultKind::StuckAtOne:
            codeword |= mask;
            break;
        }
    }
    return codeword;
}

double
FaultModel::wordFaultProbability() const
{
    if (config_.ber <= 0.0)
        return 0.0;
    return 1.0 - std::pow(1.0 - config_.ber, SecDed3932::kCodeBits);
}

FaultEventCounts
FaultModel::sampleEvents(size_t words, uint64_t streamId) const
{
    FaultEventCounts counts;
    if (config_.ber <= 0.0 || words == 0)
        return counts;
    const double n = SecDed3932::kCodeBits;
    const double pNone = std::pow(1.0 - config_.ber, n);
    const double pSingle =
        n * config_.ber * std::pow(1.0 - config_.ber, n - 1.0);
    const double pMulti = 1.0 - pNone - pSingle;

    Rng rng(siteKey(config_.seed, 0xfa117, streamId, 0));
    const double total = static_cast<double>(words);
    counts.singleBit = sampleCount(rng, total * pSingle);
    counts.multiBit = sampleCount(rng, total * std::max(pMulti, 0.0));
    counts.faulty = counts.singleBit + counts.multiBit;
    return counts;
}

} // namespace anaheim

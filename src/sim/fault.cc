#include "fault.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/status.h"
#include "ecc.h"

namespace anaheim {

namespace {

/** splitmix64 finalizer: decorrelates structured coordinate inputs. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
siteKey(uint64_t seed, size_t limb, size_t word, uint64_t epoch)
{
    uint64_t key = mix(seed);
    key = mix(key ^ (static_cast<uint64_t>(limb) + 1));
    key = mix(key ^ (static_cast<uint64_t>(word) + 1));
    key = mix(key ^ (epoch + 1));
    return key;
}

/**
 * Deterministic draw of a count with the given expectation: Knuth
 * Poisson sampling for small expectations, a clamped normal
 * approximation for large ones (both fed by the caller's Rng).
 */
uint64_t
sampleCount(Rng &rng, double expected)
{
    if (expected <= 0.0)
        return 0;
    if (expected < 64.0) {
        const double limit = std::exp(-expected);
        uint64_t count = 0;
        double product = rng.uniformReal();
        while (product > limit) {
            ++count;
            product *= rng.uniformReal();
        }
        return count;
    }
    const double draw = expected + std::sqrt(expected) * rng.gaussian();
    return draw <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(draw));
}

/** Per-codeword outcome probabilities at per-bit rate `ber` over `n`
 *  bits: none / exactly-one / two-or-more flipped. */
struct WordClassProbs {
    double single = 0.0;
    double multi = 0.0;
};

WordClassProbs
wordClassProbs(double ber, double n)
{
    WordClassProbs probs;
    const double pNone = std::pow(1.0 - ber, n);
    probs.single = n * ber * std::pow(1.0 - ber, n - 1.0);
    probs.multi = std::max(1.0 - pNone - probs.single, 0.0);
    return probs;
}

/** Stream-class tags decorrelating the event-level draw families. */
constexpr uint64_t kStorageStream = 0xfa117;
constexpr uint64_t kLaneStream = 0x1a4e5;
constexpr uint64_t kRetentionStream = 0x4e7e4;
constexpr uint64_t kPermanentStream = 0xdeadb;

} // namespace

FaultModel::FaultModel(FaultConfig config) : config_(std::move(config))
{
    ANAHEIM_CHECK(config_.ber >= 0.0 && config_.ber < 1.0,
                  InvalidArgument,
                  "bit-error rate must be in [0, 1), got ", config_.ber);
    ANAHEIM_CHECK(config_.laneBer >= 0.0 && config_.laneBer < 1.0,
                  InvalidArgument,
                  "lane bit-error rate must be in [0, 1), got ",
                  config_.laneBer);
    ANAHEIM_CHECK(config_.retentionBerPerWindow >= 0.0 &&
                      config_.retentionBerPerWindow < 1.0,
                  InvalidArgument,
                  "retention bit-error rate must be in [0, 1), got ",
                  config_.retentionBerPerWindow);
    ANAHEIM_CHECK(config_.permanentBankRate >= 0.0 &&
                      config_.permanentBankRate < 1.0,
                  InvalidArgument,
                  "permanent bank-failure rate must be in [0, 1), got ",
                  config_.permanentBankRate);
    for (const TargetedFault &target : config_.targets) {
        ANAHEIM_CHECK(target.bitMask != 0, InvalidArgument,
                      "targeted fault with empty bit mask at limb ",
                      target.limb, ", word ", target.word);
    }
}

uint64_t
FaultModel::corrupt(uint64_t codeword, size_t limb, size_t word,
                    uint64_t epoch, unsigned bits) const
{
    return corruptAtRate(codeword, config_.ber, limb, word, epoch, bits);
}

uint32_t
FaultModel::corruptLane(uint32_t value, size_t limb, size_t word,
                        uint64_t epoch) const
{
    // 28-bit Montgomery datapath; lane flips re-sample per epoch like
    // any transient upset, so a replay usually computes cleanly.
    return static_cast<uint32_t>(
        corruptAtRate(value, config_.laneBer, limb,
                      siteWord(FaultSite::MmacLane, word), epoch, 28));
}

uint64_t
FaultModel::corruptAtRate(uint64_t codeword, double rate, size_t limb,
                          size_t word, uint64_t epoch,
                          unsigned bits) const
{
    if (rate > 0.0) {
        Rng rng(siteKey(config_.seed, limb, word, epoch));
        for (unsigned bit = 0; bit < bits; ++bit) {
            if (rng.uniformReal() < rate)
                codeword ^= uint64_t{1} << bit;
        }
    }
    const uint64_t width =
        bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    for (const TargetedFault &target : config_.targets) {
        if (target.limb != limb || target.word != word)
            continue;
        const uint64_t mask = target.bitMask & width;
        switch (target.kind) {
          case FaultKind::Transient:
            codeword ^= mask;
            break;
          case FaultKind::StuckAtZero:
            codeword &= ~mask;
            break;
          case FaultKind::StuckAtOne:
            codeword |= mask;
            break;
        }
    }
    return codeword;
}

std::vector<PermanentBankFault>
FaultModel::samplePermanentBanks(size_t dieGroups,
                                 size_t banksPerGroup) const
{
    std::vector<PermanentBankFault> failed;
    for (const PermanentBankFault &bank : config_.permanentBanks) {
        if (bank.dieGroup < dieGroups && bank.bank < banksPerGroup)
            failed.push_back(bank);
    }
    if (config_.permanentBankRate > 0.0) {
        // One independent draw per physical bank, keyed only by the
        // seed and the bank's coordinates: no epoch, no stream — the
        // failure set is a property of the device, not of the run.
        for (size_t g = 0; g < dieGroups; ++g) {
            for (size_t b = 0; b < banksPerGroup; ++b) {
                Rng rng(siteKey(config_.seed, kPermanentStream,
                                g * banksPerGroup + b, 0));
                if (rng.uniformReal() < config_.permanentBankRate)
                    failed.push_back({g, b});
            }
        }
    }
    std::sort(failed.begin(), failed.end(),
              [](const PermanentBankFault &a, const PermanentBankFault &b) {
                  return a.dieGroup != b.dieGroup
                             ? a.dieGroup < b.dieGroup
                             : a.bank < b.bank;
              });
    failed.erase(std::unique(failed.begin(), failed.end(),
                             [](const PermanentBankFault &a,
                                const PermanentBankFault &b) {
                                 return a.dieGroup == b.dieGroup &&
                                        a.bank == b.bank;
                             }),
                 failed.end());
    return failed;
}

double
FaultModel::wordFaultProbability() const
{
    if (config_.ber <= 0.0)
        return 0.0;
    return 1.0 - std::pow(1.0 - config_.ber, SecDed3932::kCodeBits);
}

FaultEventCounts
FaultModel::sampleEvents(size_t words, uint64_t streamId) const
{
    FaultEventCounts counts;
    if (config_.ber <= 0.0 || words == 0)
        return counts;
    const WordClassProbs probs =
        wordClassProbs(config_.ber, SecDed3932::kCodeBits);

    Rng rng(siteKey(config_.seed, kStorageStream, streamId, 0));
    const double total = static_cast<double>(words);
    counts.singleBit = sampleCount(rng, total * probs.single);
    counts.multiBit = sampleCount(rng, total * probs.multi);
    counts.faulty = counts.singleBit + counts.multiBit;
    return counts;
}

FaultEventCounts
FaultModel::sampleLaneEvents(size_t laneOps, uint64_t streamId) const
{
    FaultEventCounts counts;
    if (config_.laneBer <= 0.0 || laneOps == 0)
        return counts;
    // A lane fault of any multiplicity poisons the product the same
    // way and nothing on the lane detects it: one class only.
    const double pFault = 1.0 - std::pow(1.0 - config_.laneBer, 28.0);
    Rng rng(siteKey(config_.seed, kLaneStream, streamId, 0));
    counts.faulty =
        sampleCount(rng, static_cast<double>(laneOps) * pFault);
    return counts;
}

FaultEventCounts
FaultModel::sampleRetention(uint64_t window, size_t words) const
{
    FaultEventCounts counts;
    if (config_.retentionBerPerWindow <= 0.0 || words == 0)
        return counts;
    // Decay lands on full stored codewords (data + check bits), so the
    // SEC-DED single/multi split applies: singles are correctable by
    // the next scrub pass, multis are lost data.
    const WordClassProbs probs = wordClassProbs(
        config_.retentionBerPerWindow, SecDed3932::kCodeBits);
    Rng rng(siteKey(config_.seed, kRetentionStream, window, 0));
    const double total = static_cast<double>(words);
    counts.singleBit = sampleCount(rng, total * probs.single);
    counts.multiBit = sampleCount(rng, total * probs.multi);
    counts.faulty = counts.singleBit + counts.multiBit;
    return counts;
}

} // namespace anaheim

#include "workloads.h"

namespace anaheim {

namespace {

/** Append `count` HMULT+rescale pairs at descending levels. */
void
appendMultChain(OpSequence &seq, TraceParams params, size_t count,
                size_t levelFloor = 20)
{
    for (size_t i = 0; i < count; ++i) {
        seq.append(buildHMult(params));
        if (params.level > levelFloor)
            params.level -= 1;
    }
}

/** Append `count` rotations. */
void
appendRotations(OpSequence &seq, const TraceParams &params, size_t count)
{
    for (size_t i = 0; i < count; ++i)
        seq.append(buildHRot(params));
}

} // namespace

OpSequence
makeBootWorkload(const TraceParams &params, double fftIter)
{
    OpSequence seq =
        buildBootstrap(params, fftIter, TraceLtAlgorithm::Hoisting);
    seq.name = "Boot";
    seq.levelsEff = 11.0;
    return seq;
}

OpSequence
makeHelrWorkload(const TraceParams &params)
{
    // One logistic-regression iteration: the gradient computation is a
    // handful of mults/rotations, and the weight refresh bootstraps
    // only 196 slots — its linear transforms shrink to a few diagonals
    // while every ModSwitch stays full width, which is why ModSwitch
    // dominates HELR (§VII-B).
    OpSequence seq;
    seq.name = "HELR";
    seq.n = params.n;

    TraceParams work = params;
    work.level = 24;
    appendMultChain(seq, work, 6, 16);
    appendRotations(seq, work, 8);

    // Sparse-slot bootstrap: same ModSwitch chain, tiny transforms.
    OpSequence boot =
        buildBootstrap(params, 3.0, TraceLtAlgorithm::Hoisting);
    // Shrink element-wise/plaintext work of the transforms to the
    // 196-slot scale by dropping the MAC accumulations' fan-in.
    for (auto &op : boot.ops) {
        if (op.phase == std::string("MAC") ||
            op.phase == std::string("KeyMult")) {
            // Keep one quarter of the rotation work.
            op.limbs = std::max<size_t>(1, op.limbs / 4);
            for (auto &operand : op.reads)
                operand.limbs = std::max<size_t>(1, operand.limbs / 4);
            for (auto &operand : op.writes)
                operand.limbs = std::max<size_t>(1, operand.limbs / 4);
        }
    }
    seq.append(boot);
    seq.levelsEff = 10.0;
    return seq;
}

OpSequence
makeSortWorkload(const TraceParams &params)
{
    // k-way sorting network on 2^14 values: ~105 compare-exchange
    // stages, each an approximate-comparison polynomial evaluation
    // (deep mult chains) plus data rearrangement rotations; the depth
    // forces frequent bootstrapping.
    OpSequence seq;
    seq.name = "Sort";
    seq.n = params.n;

    const size_t stages = 50;  // paper: ~105; halved to bound trace size
    const size_t bootsPerStage = 3;
    for (size_t s = 0; s < stages; ++s) {
        TraceParams work = params;
        work.level = 24;
        appendMultChain(seq, work, 10, 14);
        appendRotations(seq, work, 4);
        for (size_t b = 0; b < bootsPerStage; ++b) {
            seq.append(
                buildBootstrap(params, 3.5, TraceLtAlgorithm::Hoisting));
        }
    }
    seq.levelsEff = 9.0;
    return seq;
}

OpSequence
makeRnnWorkload(const TraceParams &params)
{
    // 200 RNN-cell evaluations: per cell a 128-wide matrix-vector
    // product (diagonal linear transform), element-wise gating mults,
    // and periodic bootstrapping of the hidden state.
    OpSequence seq;
    seq.name = "RNN";
    seq.n = params.n;

    const size_t cells = 100; // paper: 200; halved to bound trace size
    for (size_t c = 0; c < cells; ++c) {
        TraceParams work = params;
        work.level = 24;
        seq.append(buildLinearTransform(work, 16,
                                        TraceLtAlgorithm::Hoisting));
        appendMultChain(seq, work, 3, 14);
        if (c % 2 == 1) {
            seq.append(
                buildBootstrap(params, 3.5, TraceLtAlgorithm::Hoisting));
        }
    }
    seq.levelsEff = 10.0;
    return seq;
}

OpSequence
makeResNet20Workload(const TraceParams &params)
{
    // 20 convolutional layers as packed linear transforms [49], ReLU
    // approximations as mult chains, bootstrapping between blocks.
    OpSequence seq;
    seq.name = "ResNet20";
    seq.n = params.n;

    const size_t layers = 20;
    for (size_t layer = 0; layer < layers; ++layer) {
        TraceParams work = params;
        work.level = 24;
        seq.append(buildLinearTransform(work, 9,
                                        TraceLtAlgorithm::Hoisting));
        appendMultChain(seq, work, 6, 14); // ReLU polynomial
        seq.append(
            buildBootstrap(params, 3.5, TraceLtAlgorithm::Hoisting));
    }
    seq.levelsEff = 8.0;
    return seq;
}

OpSequence
makeResNet18AespaWorkload(const TraceParams &params)
{
    // ImageNet-scale inference with NeuJeans convolutions and AESPA's
    // quadratic activation: more data per layer (more full-slot
    // ciphertexts), shallower activation chains.
    OpSequence seq;
    seq.name = "ResNet18-AESPA";
    seq.n = params.n;

    const size_t layers = 18;
    for (size_t layer = 0; layer < layers; ++layer) {
        TraceParams work = params;
        work.level = 24;
        seq.append(buildLinearTransform(work, 16,
                                        TraceLtAlgorithm::Hoisting));
        seq.append(buildLinearTransform(work, 16,
                                        TraceLtAlgorithm::Hoisting));
        appendMultChain(seq, work, 2, 14); // AESPA square activation
        seq.append(
            buildBootstrap(params, 3.5, TraceLtAlgorithm::Hoisting));
    }
    seq.levelsEff = 7.0;
    return seq;
}

std::vector<std::pair<WorkloadInfo, OpSequence>>
makeAllWorkloads(const TraceParams &params)
{
    std::vector<std::pair<WorkloadInfo, OpSequence>> workloads;
    workloads.emplace_back(WorkloadInfo{"Boot", 11.0},
                           makeBootWorkload(params));
    workloads.emplace_back(WorkloadInfo{"HELR", 10.0},
                           makeHelrWorkload(params));
    workloads.emplace_back(WorkloadInfo{"Sort", 9.0},
                           makeSortWorkload(params));
    workloads.emplace_back(WorkloadInfo{"RNN", 10.0},
                           makeRnnWorkload(params));
    workloads.emplace_back(WorkloadInfo{"ResNet20", 8.0},
                           makeResNet20Workload(params));
    workloads.emplace_back(WorkloadInfo{"ResNet18-AESPA", 7.0},
                           makeResNet18AespaWorkload(params));
    return workloads;
}

} // namespace anaheim

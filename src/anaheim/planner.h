/**
 * @file
 * PIM memory planner (§V-C "Memory allocation"): because FHE's control
 * flow is static, every PIM kernel's operands can be pre-placed into
 * PolyGroups before execution. The planner walks a trace, sizes the
 * PolyGroup each PIM kernel needs under the column-partitioning layout,
 * and reports the peak per-bank row demand — the capacity check behind
 * the paper's OoM results (§VII-B).
 */

#ifndef ANAHEIM_ANAHEIM_PLANNER_H
#define ANAHEIM_ANAHEIM_PLANNER_H

#include "dram/timing.h"
#include "pim/kernelmodel.h"
#include "trace/kernel.h"

namespace anaheim {

struct MemoryPlan {
    /** Peak rows needed simultaneously in one bank by a PIM kernel's
     *  operand PolyGroups. */
    size_t peakRowsPerBank = 0;
    /** Index of the kernel demanding the peak. */
    size_t peakOpIndex = 0;
    /** Number of PIM kernels planned. */
    size_t pimKernels = 0;
    /** Whether the peak fits the per-bank row budget. */
    bool fits = true;
};

class PimMemoryPlanner
{
  public:
    PimMemoryPlanner(const DramConfig &dram, const PimConfig &pim)
        : dram_(dram), pim_(pim)
    {
    }

    /** Plan a trace: per-kernel PolyGroup sizing and the peak demand. */
    MemoryPlan plan(const OpSequence &seq) const;

  private:
    DramConfig dram_;
    PimConfig pim_;
};

} // namespace anaheim

#endif // ANAHEIM_ANAHEIM_PLANNER_H

/**
 * @file
 * PIM memory planner (§V-C "Memory allocation"): because FHE's control
 * flow is static, every PIM kernel's operands can be pre-placed into
 * PolyGroups before execution. The planner walks a trace, sizes the
 * PolyGroup each PIM kernel needs under the column-partitioning layout,
 * and reports the peak per-bank row demand — the capacity check behind
 * the paper's OoM results (§VII-B).
 */

#ifndef ANAHEIM_ANAHEIM_PLANNER_H
#define ANAHEIM_ANAHEIM_PLANNER_H

#include "dram/timing.h"
#include "pim/kernelmodel.h"
#include "trace/kernel.h"

namespace anaheim {

struct MemoryPlan {
    /** Peak rows needed simultaneously in one bank by a PIM kernel's
     *  operand PolyGroups. */
    size_t peakRowsPerBank = 0;
    /** Index of the kernel demanding the peak. */
    size_t peakOpIndex = 0;
    /** Number of PIM kernels planned. */
    size_t pimKernels = 0;
    /** Whether the peak fits the per-bank row budget. */
    bool fits = true;
};

class PimMemoryPlanner
{
  public:
    PimMemoryPlanner(const DramConfig &dram, const PimConfig &pim)
        : dram_(dram), pim_(pim)
    {
    }

    /** Plan a trace: per-kernel PolyGroup sizing and the peak demand. */
    MemoryPlan plan(const OpSequence &seq) const;

    /**
     * Plan the same trace on the healthy subset of a partially failed
     * device: every PolyGroup stripes around the quarantined banks of
     * the worst die group (more chunks — and rows — per healthy bank),
     * so the capacity check answers whether the degraded device still
     * fits the trace before the framework migrates onto it.
     */
    MemoryPlan plan(const OpSequence &seq,
                    const ResourceMap &resources) const;

  private:
    MemoryPlan planWith(const OpSequence &seq, const PimConfig &pim)
        const;

    DramConfig dram_;
    PimConfig pim_;
};

} // namespace anaheim

#endif // ANAHEIM_ANAHEIM_PLANNER_H

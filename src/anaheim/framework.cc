#include "framework.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "trace/validate.h"

namespace anaheim {

AnaheimConfig
AnaheimConfig::a100NearBank()
{
    AnaheimConfig config;
    config.gpu = GpuConfig::a100_80gb();
    config.library = LibraryProfile::cheddar();
    config.dram = DramConfig::hbm2A100();
    config.pim = PimConfig::nearBankA100();
    return config;
}

AnaheimConfig
AnaheimConfig::a100CustomHbm()
{
    AnaheimConfig config = a100NearBank();
    config.pim = PimConfig::customHbmA100();
    return config;
}

AnaheimConfig
AnaheimConfig::rtx4090NearBank()
{
    AnaheimConfig config;
    config.gpu = GpuConfig::rtx4090();
    config.library = LibraryProfile::cheddar();
    config.dram = DramConfig::gddr6xRtx4090();
    config.pim = PimConfig::nearBankRtx4090();
    return config;
}

AnaheimFramework::AnaheimFramework(const AnaheimConfig &config)
    : config_(config), gpu_(config.gpu, config.library),
      pim_(config.dram, config.pim)
{
}

PimOpcode
AnaheimFramework::opcodeFor(KernelType type)
{
    switch (type) {
      case KernelType::EwMove: return PimOpcode::Move;
      case KernelType::EwAdd: return PimOpcode::Add;
      case KernelType::EwSub: return PimOpcode::Sub;
      case KernelType::EwMult: return PimOpcode::Mult;
      case KernelType::EwMac: return PimOpcode::Mac;
      case KernelType::EwPMult: return PimOpcode::PMult;
      case KernelType::EwPMac: return PimOpcode::PMac;
      case KernelType::EwCAdd: return PimOpcode::CAdd;
      case KernelType::EwCMult: return PimOpcode::CMult;
      case KernelType::EwCMac: return PimOpcode::CMac;
      case KernelType::EwTensor: return PimOpcode::Tensor;
      case KernelType::EwTensorSq: return PimOpcode::TensorSq;
      case KernelType::EwModDownEp: return PimOpcode::ModDownEp;
      case KernelType::EwPAccum: return PimOpcode::PAccum;
      case KernelType::EwCAccum: return PimOpcode::CAccum;
      default:
        ANAHEIM_PANIC("kernel ", kernelTypeName(type),
                      " is not PIM-offloadable");
    }
}

RunResult
AnaheimFramework::execute(const OpSequence &seq) const
{
    checkTrace(seq);
    RunResult result;
    double clock = 0.0;
    bool prevWasPim = false;

    // Fusion analysis: op i consumes its predecessor's intermediates
    // from cache when both run on the GPU in the same phase. ModSwitch
    // chains (INTT -> BConv -> NTT) fuse unconditionally as in
    // Cheddar/100x [38]; element-wise chains need the ExtraFuse flag
    // (the +ExtraFuse arm of Fig. 10).
    std::vector<bool> onPimFlags(seq.ops.size());
    for (size_t i = 0; i < seq.ops.size(); ++i) {
        const KernelOp &op = seq.ops[i];
        onPimFlags[i] = config_.pimEnabled && op.pimEligible &&
                        pimInstrSupported(opcodeFor(op.type), op.fanIn,
                                          config_.pim.bufferEntries);
    }
    auto fusesWithPrev = [&](size_t i) {
        if (i == 0 || onPimFlags[i] || onPimFlags[i - 1])
            return false;
        const KernelOp &op = seq.ops[i];
        const KernelOp &prev = seq.ops[i - 1];
        if (prev.phase != op.phase)
            return false;
        bool readsIntermediate = false;
        for (const auto &operand : op.reads)
            readsIntermediate |= operand.kind == OperandKind::Intermediate;
        if (!readsIntermediate)
            return false;
        const bool elementWiseChain =
            kernelClass(op.type) == KernelClass::ElementWise &&
            kernelClass(prev.type) == KernelClass::ElementWise;
        return elementWiseChain ? config_.fusion.extraFuse : true;
    };

    for (size_t i = 0; i < seq.ops.size(); ++i) {
        const KernelOp &op = seq.ops[i];
        const bool onPim = onPimFlags[i];

        if (onPim) {
            const PimExecStats stats = pim_.execute(
                opcodeFor(op.type), op.fanIn, op.limbs, op.n);
            ANAHEIM_ASSERT(stats.supported, "unsupported PIM instruction");
            // GPU<->PIM transition overhead (§V-C) applies once per PIM
            // kernel; consecutive PIM instructions share one kernel.
            const double transitionNs = prevWasPim ? 0.0 : 2.0e3;
            prevWasPim = true;
            GanttEntry entry;
            entry.phase = op.phase;
            entry.device = "PIM";
            entry.cls = kernelClass(op.type);
            entry.startNs = clock;
            clock += stats.timeNs + transitionNs;
            entry.endNs = clock;
            result.timeline.push_back(entry);
            result.timeNsByCategory["PIM"] += stats.timeNs + transitionNs;
            result.energyPj += stats.energyPj;
            result.pimInternalBytes +=
                stats.chunksMoved * config_.dram.chunkBytes;
            continue;
        }

        const bool fused = fusesWithPrev(i);
        const bool writesCached =
            i + 1 < seq.ops.size() && fusesWithPrev(i + 1);

        // Coherence write-backs (§V-C): a GPU kernel whose outputs feed
        // a PIM kernel must push them out of the L2 first.
        double writeBack = 0.0;
        if (config_.pimEnabled && i + 1 < seq.ops.size() &&
            onPimFlags[i + 1]) {
            for (const auto &operand : op.writes) {
                if (operand.kind == OperandKind::Intermediate)
                    writeBack += operand.limbs * limbBytes(op.n);
            }
        }

        prevWasPim = false;
        const GpuKernelStats stats =
            gpu_.run(op, fused, writeBack, writesCached);
        GanttEntry entry;
        entry.phase = op.phase;
        entry.device = "GPU";
        entry.cls = kernelClass(op.type);
        entry.startNs = clock;
        clock += stats.timeNs;
        entry.endNs = clock;
        result.timeline.push_back(entry);
        result.timeNsByCategory[kernelClassName(kernelClass(op.type))] +=
            stats.timeNs;
        result.energyPj += stats.energyPj;
        result.gpuDramBytes += stats.traffic.total();
    }

    result.totalNs = clock;
    return result;
}

} // namespace anaheim

#include "framework.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "planner.h"
#include "sim/fault.h"
#include "sim/health.h"
#include "trace/validate.h"

namespace anaheim {

bool
timelineEntryLess(const GanttEntry &a, const GanttEntry &b)
{
    if (a.startNs != b.startNs)
        return a.startNs < b.startNs;
    if (a.device != b.device)
        return a.device < b.device;
    return a.phase < b.phase;
}

bool
timelineIsCanonical(const std::vector<GanttEntry> &timeline)
{
    for (size_t i = 1; i < timeline.size(); ++i) {
        if (timelineEntryLess(timeline[i], timeline[i - 1]))
            return false;
    }
    return true;
}

AnaheimConfig
AnaheimConfig::a100NearBank()
{
    AnaheimConfig config;
    config.gpu = GpuConfig::a100_80gb();
    config.library = LibraryProfile::cheddar();
    config.dram = DramConfig::hbm2A100();
    config.pim = PimConfig::nearBankA100();
    return config;
}

AnaheimConfig
AnaheimConfig::a100CustomHbm()
{
    AnaheimConfig config = a100NearBank();
    config.pim = PimConfig::customHbmA100();
    return config;
}

AnaheimConfig
AnaheimConfig::rtx4090NearBank()
{
    AnaheimConfig config;
    config.gpu = GpuConfig::rtx4090();
    config.library = LibraryProfile::cheddar();
    config.dram = DramConfig::gddr6xRtx4090();
    config.pim = PimConfig::nearBankRtx4090();
    return config;
}

AnaheimFramework::AnaheimFramework(const AnaheimConfig &config)
    : config_(config), gpu_(config.gpu, config.library),
      pim_(config.dram, config.pim)
{
}

PimOpcode
AnaheimFramework::opcodeFor(KernelType type)
{
    switch (type) {
      case KernelType::EwMove: return PimOpcode::Move;
      case KernelType::EwAdd: return PimOpcode::Add;
      case KernelType::EwSub: return PimOpcode::Sub;
      case KernelType::EwMult: return PimOpcode::Mult;
      case KernelType::EwMac: return PimOpcode::Mac;
      case KernelType::EwPMult: return PimOpcode::PMult;
      case KernelType::EwPMac: return PimOpcode::PMac;
      case KernelType::EwCAdd: return PimOpcode::CAdd;
      case KernelType::EwCMult: return PimOpcode::CMult;
      case KernelType::EwCMac: return PimOpcode::CMac;
      case KernelType::EwTensor: return PimOpcode::Tensor;
      case KernelType::EwTensorSq: return PimOpcode::TensorSq;
      case KernelType::EwModDownEp: return PimOpcode::ModDownEp;
      case KernelType::EwPAccum: return PimOpcode::PAccum;
      case KernelType::EwCAccum: return PimOpcode::CAccum;
      default:
        ANAHEIM_PANIC("kernel ", kernelTypeName(type),
                      " is not PIM-offloadable");
    }
}

namespace {

/** Operand words a PIM op streams through its word-read boundary:
 *  every read operand limb, n words each. */
size_t
pimWordsRead(const KernelOp &op)
{
    size_t limbs = 0;
    for (const auto &operand : op.reads)
        limbs += operand.limbs;
    return std::max(limbs, op.limbs) * op.n;
}

/** Result words a PIM op pushes back through the write drivers. */
size_t
pimWordsWritten(const KernelOp &op)
{
    size_t limbs = 0;
    for (const auto &operand : op.writes)
        limbs += operand.limbs;
    return limbs * op.n;
}

/** Live ciphertext footprint: the working/intermediate operand bytes
 *  of the widest op (Evk / plaintext constants are reproducible from
 *  the keys and never need checkpointing or scrubbing). */
double
liveFootprintBytes(const OpSequence &seq)
{
    double live = 0.0;
    for (const KernelOp &op : seq.ops) {
        double bytes = 0.0;
        for (const auto &operand : op.reads) {
            if (operand.kind == OperandKind::Working ||
                operand.kind == OperandKind::Intermediate)
                bytes += operand.limbs * limbBytes(op.n);
        }
        for (const auto &operand : op.writes) {
            if (operand.kind == OperandKind::Working ||
                operand.kind == OperandKind::Intermediate)
                bytes += operand.limbs * limbBytes(op.n);
        }
        live = std::max(live, bytes);
    }
    return live;
}

} // namespace

RunResult
AnaheimFramework::execute(const OpSequence &seq) const
{
    OBS_SPAN("framework/execute");
    checkTrace(seq);
    RunResult result;
    double clock = 0.0;
    bool prevWasPim = false;
    const ResilienceConfig &rc = config_.resilience;

    // Fault/ECC event model for the PIM datapath. Only constructed
    // when faults are configured: the all-rates-zero path is untouched.
    std::optional<FaultModel> faultModel;
    {
        FaultConfig faults;
        faults.ber = rc.ber;
        faults.laneBer = rc.laneBer;
        faults.retentionBerPerWindow = rc.retentionBerPerWindow;
        faults.seed = rc.faultSeed;
        faults.permanentBanks = rc.permanentBanks;
        faults.permanentLanes = rc.permanentLanes;
        faults.permanentBankRate = rc.permanentBankRate;
        if (faults.enabled())
            faultModel.emplace(faults);
    }

    // Permanent-fault universe and health monitoring. A failed site is
    // "active" while it still carries data; once the monitor
    // quarantines it and execution migrates, it stops corrupting.
    const size_t totalBanks =
        config_.pim.banksPerDieGroup * config_.pim.dieGroups;
    std::vector<FaultSiteId> failedBankSites;
    std::vector<FaultSiteId> failedLaneSites;
    if (faultModel) {
        for (const PermanentBankFault &bank :
             faultModel->samplePermanentBanks(config_.pim.dieGroups,
                                              config_.pim.banksPerDieGroup))
            failedBankSites.push_back(
                {FaultSiteId::Kind::Bank, bank.dieGroup, bank.bank});
        for (const PermanentLaneFault &lane :
             faultModel->config().permanentLanes) {
            if (lane.dieGroup < config_.pim.dieGroups &&
                lane.lane < config_.pim.lanes)
                failedLaneSites.push_back({FaultSiteId::Kind::MmacLane,
                                           lane.dieGroup, lane.lane});
        }
    }
    std::optional<HealthMonitor> health;
    if (rc.health.enabled)
        health.emplace(rc.health, config_.pim.dieGroups,
                       config_.pim.banksPerDieGroup, config_.pim.lanes);
    size_t activeFailedBanks = 0;
    size_t activeFailedLanes = 0;
    auto refreshActiveFaults = [&]() {
        activeFailedBanks = 0;
        activeFailedLanes = 0;
        for (const FaultSiteId &site : failedBankSites)
            activeFailedBanks += health && health->isQuarantined(site)
                                     ? 0
                                     : 1;
        for (const FaultSiteId &site : failedLaneSites)
            activeFailedLanes += health && health->isQuarantined(site)
                                     ? 0
                                     : 1;
    };
    refreshActiveFaults();
    // After a quarantine the device runs degraded: limbs stripe over
    // the healthy banks (more chunks per bank), surviving lanes absorb
    // the dead ones' multiplies.
    std::optional<PimKernelModel> degradedPim;
    auto pimModel = [&]() -> const PimKernelModel & {
        return degradedPim ? *degradedPim : pim_;
    };
    bool pimOffline = false;
    // Stream ids keep every (generation, op, retry attempt) draw
    // distinct while staying reproducible across runs with the same
    // seed. Generation 0 reproduces the pre-checkpoint stream layout;
    // each rollback bumps the generation so replayed segments resample
    // their transient faults.
    const uint64_t retryStreams =
        static_cast<uint64_t>(rc.maxPimRetries) + 1;
    const uint64_t opStreams = static_cast<uint64_t>(seq.ops.size()) + 1;

    // Fusion analysis: op i consumes its predecessor's intermediates
    // from cache when both run on the GPU in the same phase. ModSwitch
    // chains (INTT -> BConv -> NTT) fuse unconditionally as in
    // Cheddar/100x [38]; element-wise chains need the ExtraFuse flag
    // (the +ExtraFuse arm of Fig. 10).
    std::vector<bool> onPimFlags(seq.ops.size());
    for (size_t i = 0; i < seq.ops.size(); ++i) {
        const KernelOp &op = seq.ops[i];
        onPimFlags[i] = config_.pimEnabled && op.pimEligible &&
                        pimInstrSupported(opcodeFor(op.type), op.fanIn,
                                          config_.pim.bufferEntries);
    }
    auto fusesWithPrev = [&](size_t i) {
        if (i == 0 || onPimFlags[i] || onPimFlags[i - 1])
            return false;
        const KernelOp &op = seq.ops[i];
        const KernelOp &prev = seq.ops[i - 1];
        if (prev.phase != op.phase)
            return false;
        bool readsIntermediate = false;
        for (const auto &operand : op.reads)
            readsIntermediate |= operand.kind == OperandKind::Intermediate;
        if (!readsIntermediate)
            return false;
        const bool elementWiseChain =
            kernelClass(op.type) == KernelClass::ElementWise &&
            kernelClass(prev.type) == KernelClass::ElementWise;
        return elementWiseChain ? config_.fusion.extraFuse : true;
    };

    // Detect-and-recover state. With the default config (all rates 0,
    // scrub / checksums / checkpointing off) none of this ever charges
    // time or energy, so execution is bitwise identical to the plain
    // fault-free schedule.
    ResilienceStats &res = result.resilience;
    const bool checksumOn = rc.checksumEnabled;
    std::optional<ScrubEngine> scrubber;
    if (rc.scrub.enabled)
        scrubber.emplace(config_.dram, rc.scrub);
    const DramEnergy &denergy = config_.dram.energy;
    // GB/s is bytes-per-ns at the 1e9 scale, so bytes / bw is ns.
    const double extBw = config_.dram.externalBwGBs;
    const double liveBytes = liveFootprintBytes(seq);
    const size_t residentWords = static_cast<size_t>(liveBytes / 4.0);
    const double windowNs = static_cast<double>(config_.dram.timing.tREFI) *
                            config_.dram.timing.tCkNs;

    uint64_t generation = 0;
    size_t checkpointIndex = 0; ///< trace inputs are always restorable
    size_t segmentsSinceCkpt = 0;
    uint64_t retentionWindow = 0;
    double nextScrubNs = scrubber ? rc.scrub.intervalNs : 0.0;
    // Corruption in flight: silent corrupt words a checksum could still
    // catch, and retention decay awaiting a scrub or verify pass.
    uint64_t pendingSilent = 0;
    uint64_t pendingRetCorrectable = 0;
    uint64_t pendingRetUncorrectable = 0;

    // Maintenance phases get their own Gantt entries and breakdown
    // categories so recovery overhead is visible in the timeline.
    auto chargePhase = [&](const char *phase, const char *device,
                           double durNs, double energyPj) {
        GanttEntry entry;
        entry.phase = phase;
        entry.device = device;
        entry.cls = KernelClass::ElementWise;
        entry.startNs = clock;
        clock += durNs;
        entry.endNs = clock;
        entry.energyPj = energyPj;
        entry.bound = BoundBy::None;
        result.timeline.push_back(entry);
        result.timeNsByCategory[phase] += durNs;
        result.energyPj += energyPj;
    };
    auto addSilent = [&](uint64_t words) {
        if (words == 0)
            return;
        if (checksumOn)
            pendingSilent += words;
        else
            res.silentErrors += words;
    };
    // Whether a rollback is still available (vs surfacing the event as
    // unrecovered / falling back to the GPU).
    auto canRollBack = [&]() {
        return rc.checkpoint.enabled &&
               res.rollbacks < rc.checkpoint.maxRollbacks;
    };
    // Roll back to the last checkpoint: restore the live footprint from
    // the snapshot region, drop all in-flight corruption, and resample
    // the replayed segments' faults under a new generation.
    auto rollBack = [&](size_t i) {
        ++res.rollbacks;
        ++generation;
        res.replayedSegments += i - checkpointIndex;
        chargePhase("Rollback", "DRAM",
                    liveBytes > 0.0 ? 2.0 * liveBytes / extBw : 0.0,
                    2.0 * liveBytes * denergy.globalIoPerBytePj);
        pendingSilent = 0;
        pendingRetCorrectable = 0;
        pendingRetUncorrectable = 0;
        segmentsSinceCkpt = 0;
        prevWasPim = false;
        return checkpointIndex;
    };
    // Verify the ciphertext checksums over `bytes` of residues; true
    // when the data is clean.
    auto verifyChecksums = [&](double bytes) {
        ++res.checksumChecks;
        chargePhase("Verify", "GPU", bytes / extBw,
                    bytes * denergy.nearBankPerBytePj);
        if (pendingSilent + pendingRetUncorrectable == 0)
            return true;
        ++res.checksumMismatches;
        return false;
    };
    auto surfaceUnrecovered = [&]() {
        ++res.unrecovered;
        pendingSilent = 0;
        pendingRetUncorrectable = 0;
    };
    enum class FallbackCause { RetryExhausted, Uncheckpointed,
                               CapacityFloor };
    auto countFallback = [&](FallbackCause cause) {
        ++res.gpuFallbacks;
        switch (cause) {
          case FallbackCause::RetryExhausted:
            ++res.gpuFallbacksRetryExhausted;
            break;
          case FallbackCause::Uncheckpointed:
            ++res.gpuFallbacksUncheckpointed;
            break;
          case FallbackCause::CapacityFloor:
            ++res.gpuFallbacksCapacityFloor;
            break;
        }
    };
    // Feed a detected error to the health monitor against every still-
    // active permanently failed site that could have caused it (the
    // detector cannot localize beyond that). Returns true when a site
    // newly crossed the permanent threshold — the caller migrates.
    // Pure transients leave the suspect set empty, so healthy banks
    // are never quarantined by an upset storm.
    auto recordSuspects = [&](bool banks, bool lanes) {
        if (!health)
            return false;
        bool newlyQuarantined = false;
        if (banks) {
            for (const FaultSiteId &site : failedBankSites)
                newlyQuarantined |= health->recordError(site, clock);
        }
        if (lanes) {
            for (const FaultSiteId &site : failedLaneSites)
                newlyQuarantined |= health->recordError(site, clock);
        }
        return newlyQuarantined;
    };
    // Quarantine + remap: re-plan the trace on the healthy subset,
    // migrate the live footprint onto it, and resume — from the last
    // checkpoint when one exists (the segment group replays on the
    // degraded device), else from `resumeAt`. Does NOT consume the
    // rollback budget: the broken site is being removed, not retried.
    // When quarantine leaves too little capacity (the configured floor,
    // or the degraded plan no longer fits), PIM offload is abandoned
    // and the remaining PIM segments are redirected to the GPU.
    auto quarantineAndMigrate = [&](size_t next, size_t resumeAt) {
        ++res.migrations;
        const ResourceMap &rm = health->resources();
        refreshActiveFaults();
        ++generation; // replays resample their transient faults
        // Control-plane cost: remap tables + lockstep re-fusing.
        chargePhase("Quarantine", "DRAM", 1.0e3, 0.0);
        const PimConfig degraded = config_.pim.degraded(rm);
        const MemoryPlan degradedPlan =
            PimMemoryPlanner(config_.dram, degraded).plan(seq);
        if (health->belowCapacityFloor() || !degradedPlan.fits) {
            pimOffline = true;
            degradedPim.reset();
        } else {
            degradedPim.emplace(config_.dram, degraded);
            // One pass over the live footprint into the new layout.
            chargePhase("Migrate", "DRAM",
                        liveBytes > 0.0 ? 2.0 * liveBytes / extBw : 0.0,
                        2.0 * liveBytes * denergy.globalIoPerBytePj);
        }
        pendingSilent = 0;
        pendingRetCorrectable = 0;
        pendingRetUncorrectable = 0;
        segmentsSinceCkpt = 0;
        prevWasPim = false;
        if (rc.checkpoint.enabled) {
            res.replayedSegments += next - checkpointIndex;
            return checkpointIndex;
        }
        return resumeAt;
    };

    size_t i = 0;
    while (true) {
        if (i >= seq.ops.size()) {
            // End-of-trace boundary: the final outputs get one last
            // verification before they are decrypted.
            if (checksumOn) {
                if (!verifyChecksums(liveBytes)) {
                    if (recordSuspects(!rc.eccEnabled, true) &&
                        rc.checkpoint.enabled) {
                        i = quarantineAndMigrate(i, i);
                        continue;
                    }
                    if (canRollBack()) {
                        i = rollBack(i);
                        continue;
                    }
                    surfaceUnrecovered();
                }
            }
            break;
        }

        // --- Time-driven maintenance ahead of op i ---
        // Retention decay accumulates on the resident footprint per
        // crossed refresh window; windows are keyed by absolute index,
        // so replays never resample a window already paid for.
        if (faultModel && rc.retentionBerPerWindow > 0.0 && windowNs > 0.0) {
            const uint64_t window =
                static_cast<uint64_t>(clock / windowNs);
            while (retentionWindow < window) {
                ++retentionWindow;
                const FaultEventCounts decay = faultModel->sampleRetention(
                    retentionWindow, residentWords);
                res.retentionFaultyWords += decay.faulty;
                if (!rc.eccEnabled) {
                    // Raw arrays: decay is indistinguishable from data.
                    addSilent(decay.faulty);
                } else {
                    pendingRetCorrectable += decay.singleBit;
                    pendingRetUncorrectable += decay.multiBit;
                }
            }
        }
        if (scrubber && clock >= nextScrubNs) {
            // One pass covers every missed interval (a long GPU kernel
            // may straddle several).
            while (clock >= nextScrubNs)
                nextScrubNs += rc.scrub.intervalNs;
            ++res.scrubPasses;
            const ScrubPassStats pass = scrubber->pass(liveBytes);
            chargePhase("Scrub", "DRAM", pass.timeNs, pass.energyPj);
            res.scrubCorrected += pendingRetCorrectable;
            pendingRetCorrectable = 0;
            if (pendingRetUncorrectable > 0) {
                res.scrubUncorrectable += pendingRetUncorrectable;
                pendingRetUncorrectable = 0;
                if (canRollBack()) {
                    i = rollBack(i);
                    continue;
                }
                surfaceUnrecovered();
            }
        }
        if (rc.checkpoint.enabled && i > checkpointIndex &&
            segmentsSinceCkpt >= rc.checkpoint.intervalSegments) {
            // Verify before snapshotting: never checkpoint corrupt
            // state, or rollback would replay the corruption forever.
            if (checksumOn && !verifyChecksums(liveBytes)) {
                if (recordSuspects(!rc.eccEnabled, true)) {
                    i = quarantineAndMigrate(i, i);
                    continue;
                }
                if (canRollBack()) {
                    i = rollBack(i);
                    continue;
                }
                surfaceUnrecovered();
                segmentsSinceCkpt = 0; // retry next interval
            } else {
                ++res.checkpoints;
                chargePhase(
                    "Checkpoint", "DRAM",
                    liveBytes > 0.0 ? 2.0 * liveBytes / extBw : 0.0,
                    2.0 * liveBytes * denergy.globalIoPerBytePj);
                checkpointIndex = i;
                segmentsSinceCkpt = 0;
            }
        }

        const KernelOp &op = seq.ops[i];
        const bool onPim = onPimFlags[i] && !pimOffline;

        if (onPim) {
            const PimExecStats stats = pimModel().execute(
                opcodeFor(op.type), op.fanIn, op.limbs, op.n);
            ANAHEIM_ASSERT(stats.supported, "unsupported PIM instruction");
            // GPU<->PIM transition overhead (§V-C) applies once per PIM
            // kernel; consecutive PIM instructions share one kernel.
            const double transitionNs = prevWasPim ? 0.0 : 2.0e3;

            // One initial attempt, plus replays charged at full price
            // for every detected-uncorrectable ECC event; when the
            // retry budget runs out, roll back to the last checkpoint
            // if one is available, else fall back to the GPU (§VI-A
            // datapath riding raw DRAM arrays).
            double pimNs = stats.timeNs + transitionNs;
            double pimEnergyPj = stats.energyPj;
            double pimChunks = stats.chunksMoved;
            bool fellBack = false;
            FallbackCause cause = FallbackCause::RetryExhausted;
            bool needRollback = false;
            bool needMigrate = false;
            if (faultModel) {
                const uint64_t opStream = generation * opStreams + i;
                // Permanent-bank damage is deterministic: the same
                // share of the op's accesses lands on dead banks on
                // every attempt and every generation — only a remap
                // (or retirement of the banks) makes it go away.
                const size_t words =
                    pimWordsRead(op) + pimWordsWritten(op);
                const uint64_t permWords = permanentFaultyWords(
                    words, activeFailedBanks, totalBanks);
                if (rc.ber > 0.0 || permWords > 0) {
                    // Storage sites: operand reads plus the result
                    // write-back ride the same ECC boundary.
                    for (uint64_t attempt = 0;; ++attempt) {
                        const FaultEventCounts events =
                            faultModel->sampleEvents(
                                words, opStream * retryStreams + attempt);
                        res.faultyWords += events.faulty + permWords;
                        res.permanentFaultyWords += permWords;
                        if (!rc.eccEnabled) {
                            // Nothing at the word boundary detects the
                            // corruption: no retry signal; checksums
                            // are the only remaining net.
                            addSilent(events.faulty + permWords);
                            break;
                        }
                        res.eccCorrected += events.singleBit;
                        const uint64_t multi =
                            events.multiBit + permWords;
                        if (multi == 0)
                            break;
                        res.eccUncorrectable += multi;
                        if (attempt >= rc.maxPimRetries) {
                            // Escalation past the retry budget: a site
                            // crossing the permanent threshold is
                            // quarantined and execution migrates off
                            // it; otherwise roll back while the budget
                            // lasts, else abandon the segment to the
                            // GPU.
                            if (permWords > 0 &&
                                recordSuspects(true, false)) {
                                needMigrate = true;
                            } else if (canRollBack()) {
                                needRollback = true;
                            } else {
                                fellBack = true;
                                cause = rc.checkpoint.enabled
                                            ? FallbackCause::RetryExhausted
                                            : FallbackCause::Uncheckpointed;
                            }
                            break;
                        }
                        ++res.pimRetries;
                        pimNs += stats.timeNs;
                        pimEnergyPj += stats.energyPj;
                        pimChunks += stats.chunksMoved;
                    }
                }
                if ((rc.laneBer > 0.0 || activeFailedLanes > 0) &&
                    !needRollback && !fellBack && !needMigrate) {
                    // Post-multiply lane flips: no ECC reaches the
                    // 28-bit datapath, so every hit is silent here.
                    // Dead lanes corrupt their share of every op's
                    // multiplies the same way — deterministically.
                    const size_t laneOps =
                        static_cast<size_t>(op.modMults());
                    const FaultEventCounts lane =
                        faultModel->sampleLaneEvents(laneOps, opStream);
                    const uint64_t permLane = permanentFaultyWords(
                        laneOps, activeFailedLanes, config_.pim.lanes);
                    res.laneFaults += lane.faulty + permLane;
                    res.permanentLaneFaults += permLane;
                    addSilent(lane.faulty + permLane);
                }
            }

            GanttEntry entry;
            entry.phase = op.phase;
            entry.device = "PIM";
            entry.cls = kernelClass(op.type);
            entry.startNs = clock;
            clock += pimNs;
            entry.endNs = clock;
            entry.energyPj = pimEnergyPj;
            // Near-bank PIM time is internal-streaming limited by
            // construction (§VI-A all-bank lockstep).
            entry.bound = BoundBy::Bandwidth;
            result.timeline.push_back(entry);
            result.timeNsByCategory["PIM"] += pimNs;
            result.energyPj += pimEnergyPj;
            result.pimInternalBytes +=
                pimChunks * config_.dram.chunkBytes;
            prevWasPim = true;

            if (needMigrate) {
                // Quarantine + remap + replay. Without a checkpoint
                // only op i re-runs — its operands are intact, since
                // failed attempts never commit.
                i = quarantineAndMigrate(i + 1, i);
                continue;
            }
            if (needRollback) {
                // Replay the whole segment group from the snapshot —
                // op i included, hence the +1 before rewinding.
                i = rollBack(i + 1);
                continue;
            }
            if (fellBack) {
                // The segment's PIM result is untrustworthy even after
                // the replays: re-run it on the GPU (unfused — its
                // operands live in DRAM, not the cache).
                countFallback(cause);
                const GpuKernelStats gpuStats = gpu_.run(op);
                GanttEntry fallback;
                fallback.phase = op.phase;
                fallback.device = "GPU";
                fallback.cls = kernelClass(op.type);
                fallback.startNs = clock;
                clock += gpuStats.timeNs;
                fallback.endNs = clock;
                fallback.energyPj = gpuStats.energyPj;
                fallback.bound = gpuStats.memoryBound()
                                     ? BoundBy::Bandwidth
                                     : BoundBy::Compute;
                result.timeline.push_back(fallback);
                result.timeNsByCategory[kernelClassName(
                    kernelClass(op.type))] += gpuStats.timeNs;
                result.energyPj += gpuStats.energyPj;
                result.gpuDramBytes += gpuStats.traffic.total();
                prevWasPim = false;
            } else if (checksumOn && i + 1 < seq.ops.size() &&
                       !onPimFlags[i + 1]) {
                // Coherence write-back boundary (§V-C): the GPU is
                // about to consume this segment's outputs — verify
                // their checksums before corruption can propagate.
                if (!verifyChecksums(op.writeBytes())) {
                    // Checksums are the only detector that sees dead
                    // lanes (and dead banks with ECC off): those sites
                    // are the permanent suspects here.
                    if (recordSuspects(!rc.eccEnabled, true)) {
                        if (rc.checkpoint.enabled) {
                            i = quarantineAndMigrate(i + 1, i);
                            continue;
                        }
                        // Quarantine stops future corruption, but the
                        // committed outputs are already lost without a
                        // snapshot to replay from.
                        surfaceUnrecovered();
                        i = quarantineAndMigrate(i + 1, i + 1);
                        continue;
                    }
                    if (canRollBack()) {
                        i = rollBack(i + 1);
                        continue;
                    }
                    surfaceUnrecovered();
                }
            }
            ++i;
            ++segmentsSinceCkpt;
            continue;
        }

        // PIM-eligible ops arriving after the capacity floor tripped
        // are redirected here; each redirection is a counted fallback.
        if (onPimFlags[i] && pimOffline)
            countFallback(FallbackCause::CapacityFloor);

        const bool fused = fusesWithPrev(i);
        const bool writesCached =
            i + 1 < seq.ops.size() && fusesWithPrev(i + 1);

        // Coherence write-backs (§V-C): a GPU kernel whose outputs feed
        // a PIM kernel must push them out of the L2 first.
        double writeBack = 0.0;
        if (config_.pimEnabled && !pimOffline &&
            i + 1 < seq.ops.size() && onPimFlags[i + 1]) {
            for (const auto &operand : op.writes) {
                if (operand.kind == OperandKind::Intermediate)
                    writeBack += operand.limbs * limbBytes(op.n);
            }
        }

        prevWasPim = false;
        const GpuKernelStats stats =
            gpu_.run(op, fused, writeBack, writesCached);
        GanttEntry entry;
        entry.phase = op.phase;
        entry.device = "GPU";
        entry.cls = kernelClass(op.type);
        entry.startNs = clock;
        clock += stats.timeNs;
        entry.endNs = clock;
        entry.energyPj = stats.energyPj;
        entry.bound = stats.memoryBound() ? BoundBy::Bandwidth
                                          : BoundBy::Compute;
        result.timeline.push_back(entry);
        result.timeNsByCategory[kernelClassName(kernelClass(op.type))] +=
            stats.timeNs;
        result.energyPj += stats.energyPj;
        result.gpuDramBytes += stats.traffic.total();
        ++i;
        ++segmentsSinceCkpt;
    }

    if (health) {
        res.healthErrorEvents = health->errorEvents();
        res.quarantinedBanks = health->resources().quarantinedBanks();
        res.quarantinedLanes = health->resources().quarantinedLanes();
        result.pimCapacityFraction = health->capacityFraction();
    }
    result.pimOffline = pimOffline;
    result.totalNs = clock;
    // Canonical timeline order — (startNs, device, phase) — so trace
    // exports and golden comparisons are reproducible regardless of
    // host thread count or future scheduler changes. Execution already
    // appends in start order; the stable sort only tie-breaks.
    std::stable_sort(result.timeline.begin(), result.timeline.end(),
                     timelineEntryLess);
    ANAHEIM_ASSERT(timelineIsCanonical(result.timeline),
                   "timeline sort failed");
    obs::publishRunMetrics(result);
    if (config_.obs.trace || obs::tracingEnabled())
        obs::recordRunTimeline(seq.name, result);
    return result;
}

} // namespace anaheim

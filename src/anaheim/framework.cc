#include "framework.h"

#include <vector>

#include "common/logging.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "runcontext.h"

namespace anaheim {

bool
timelineEntryLess(const GanttEntry &a, const GanttEntry &b)
{
    if (a.startNs != b.startNs)
        return a.startNs < b.startNs;
    if (a.device != b.device)
        return a.device < b.device;
    return a.phase < b.phase;
}

bool
timelineIsCanonical(const std::vector<GanttEntry> &timeline)
{
    for (size_t i = 1; i < timeline.size(); ++i) {
        if (timelineEntryLess(timeline[i], timeline[i - 1]))
            return false;
    }
    return true;
}

AnaheimConfig
AnaheimConfig::a100NearBank()
{
    AnaheimConfig config;
    config.gpu = GpuConfig::a100_80gb();
    config.library = LibraryProfile::cheddar();
    config.dram = DramConfig::hbm2A100();
    config.pim = PimConfig::nearBankA100();
    return config;
}

AnaheimConfig
AnaheimConfig::a100CustomHbm()
{
    AnaheimConfig config = a100NearBank();
    config.pim = PimConfig::customHbmA100();
    return config;
}

AnaheimConfig
AnaheimConfig::rtx4090NearBank()
{
    AnaheimConfig config;
    config.gpu = GpuConfig::rtx4090();
    config.library = LibraryProfile::cheddar();
    config.dram = DramConfig::gddr6xRtx4090();
    config.pim = PimConfig::nearBankRtx4090();
    return config;
}

AnaheimFramework::AnaheimFramework(const AnaheimConfig &config)
    : config_(config), gpu_(config.gpu, config.library),
      pim_(config.dram, config.pim)
{
}

PimOpcode
AnaheimFramework::opcodeFor(KernelType type)
{
    switch (type) {
      case KernelType::EwMove: return PimOpcode::Move;
      case KernelType::EwAdd: return PimOpcode::Add;
      case KernelType::EwSub: return PimOpcode::Sub;
      case KernelType::EwMult: return PimOpcode::Mult;
      case KernelType::EwMac: return PimOpcode::Mac;
      case KernelType::EwPMult: return PimOpcode::PMult;
      case KernelType::EwPMac: return PimOpcode::PMac;
      case KernelType::EwCAdd: return PimOpcode::CAdd;
      case KernelType::EwCMult: return PimOpcode::CMult;
      case KernelType::EwCMac: return PimOpcode::CMac;
      case KernelType::EwTensor: return PimOpcode::Tensor;
      case KernelType::EwTensorSq: return PimOpcode::TensorSq;
      case KernelType::EwModDownEp: return PimOpcode::ModDownEp;
      case KernelType::EwPAccum: return PimOpcode::PAccum;
      case KernelType::EwCAccum: return PimOpcode::CAccum;
      default:
        ANAHEIM_PANIC("kernel ", kernelTypeName(type),
                      " is not PIM-offloadable");
    }
}

RunResult
AnaheimFramework::execute(const OpSequence &seq) const
{
    OBS_SPAN("framework/execute");
    RunContext ctx(*this, seq);
    while (!ctx.done())
        ctx.step();
    RunResult result = ctx.finish();
    if (config_.obs.trace || obs::tracingEnabled()) {
        const uint32_t run = obs::recordRunTimeline(seq.name, result);
        obs::publishRunMetrics(result, run);
    } else {
        obs::publishRunMetrics(result);
    }
    return result;
}

} // namespace anaheim

#include "framework.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "sim/fault.h"
#include "trace/validate.h"

namespace anaheim {

AnaheimConfig
AnaheimConfig::a100NearBank()
{
    AnaheimConfig config;
    config.gpu = GpuConfig::a100_80gb();
    config.library = LibraryProfile::cheddar();
    config.dram = DramConfig::hbm2A100();
    config.pim = PimConfig::nearBankA100();
    return config;
}

AnaheimConfig
AnaheimConfig::a100CustomHbm()
{
    AnaheimConfig config = a100NearBank();
    config.pim = PimConfig::customHbmA100();
    return config;
}

AnaheimConfig
AnaheimConfig::rtx4090NearBank()
{
    AnaheimConfig config;
    config.gpu = GpuConfig::rtx4090();
    config.library = LibraryProfile::cheddar();
    config.dram = DramConfig::gddr6xRtx4090();
    config.pim = PimConfig::nearBankRtx4090();
    return config;
}

AnaheimFramework::AnaheimFramework(const AnaheimConfig &config)
    : config_(config), gpu_(config.gpu, config.library),
      pim_(config.dram, config.pim)
{
}

PimOpcode
AnaheimFramework::opcodeFor(KernelType type)
{
    switch (type) {
      case KernelType::EwMove: return PimOpcode::Move;
      case KernelType::EwAdd: return PimOpcode::Add;
      case KernelType::EwSub: return PimOpcode::Sub;
      case KernelType::EwMult: return PimOpcode::Mult;
      case KernelType::EwMac: return PimOpcode::Mac;
      case KernelType::EwPMult: return PimOpcode::PMult;
      case KernelType::EwPMac: return PimOpcode::PMac;
      case KernelType::EwCAdd: return PimOpcode::CAdd;
      case KernelType::EwCMult: return PimOpcode::CMult;
      case KernelType::EwCMac: return PimOpcode::CMac;
      case KernelType::EwTensor: return PimOpcode::Tensor;
      case KernelType::EwTensorSq: return PimOpcode::TensorSq;
      case KernelType::EwModDownEp: return PimOpcode::ModDownEp;
      case KernelType::EwPAccum: return PimOpcode::PAccum;
      case KernelType::EwCAccum: return PimOpcode::CAccum;
      default:
        ANAHEIM_PANIC("kernel ", kernelTypeName(type),
                      " is not PIM-offloadable");
    }
}

namespace {

/** Operand words a PIM op streams through its word-read boundary:
 *  every read operand limb, n words each. */
size_t
pimWordsRead(const KernelOp &op)
{
    size_t limbs = 0;
    for (const auto &operand : op.reads)
        limbs += operand.limbs;
    return std::max(limbs, op.limbs) * op.n;
}

} // namespace

RunResult
AnaheimFramework::execute(const OpSequence &seq) const
{
    checkTrace(seq);
    RunResult result;
    double clock = 0.0;
    bool prevWasPim = false;

    // Fault/ECC event model for the PIM datapath. Only constructed
    // when faults are configured: the BER = 0 path is untouched.
    std::optional<FaultModel> faultModel;
    if (config_.resilience.ber > 0.0) {
        FaultConfig faults;
        faults.ber = config_.resilience.ber;
        faults.seed = config_.resilience.faultSeed;
        faultModel.emplace(faults);
    }
    // Stream ids keep every (op, retry attempt) draw distinct while
    // staying reproducible across runs with the same seed.
    const uint64_t retryStreams =
        static_cast<uint64_t>(config_.resilience.maxPimRetries) + 1;

    // Fusion analysis: op i consumes its predecessor's intermediates
    // from cache when both run on the GPU in the same phase. ModSwitch
    // chains (INTT -> BConv -> NTT) fuse unconditionally as in
    // Cheddar/100x [38]; element-wise chains need the ExtraFuse flag
    // (the +ExtraFuse arm of Fig. 10).
    std::vector<bool> onPimFlags(seq.ops.size());
    for (size_t i = 0; i < seq.ops.size(); ++i) {
        const KernelOp &op = seq.ops[i];
        onPimFlags[i] = config_.pimEnabled && op.pimEligible &&
                        pimInstrSupported(opcodeFor(op.type), op.fanIn,
                                          config_.pim.bufferEntries);
    }
    auto fusesWithPrev = [&](size_t i) {
        if (i == 0 || onPimFlags[i] || onPimFlags[i - 1])
            return false;
        const KernelOp &op = seq.ops[i];
        const KernelOp &prev = seq.ops[i - 1];
        if (prev.phase != op.phase)
            return false;
        bool readsIntermediate = false;
        for (const auto &operand : op.reads)
            readsIntermediate |= operand.kind == OperandKind::Intermediate;
        if (!readsIntermediate)
            return false;
        const bool elementWiseChain =
            kernelClass(op.type) == KernelClass::ElementWise &&
            kernelClass(prev.type) == KernelClass::ElementWise;
        return elementWiseChain ? config_.fusion.extraFuse : true;
    };

    for (size_t i = 0; i < seq.ops.size(); ++i) {
        const KernelOp &op = seq.ops[i];
        const bool onPim = onPimFlags[i];

        if (onPim) {
            const PimExecStats stats = pim_.execute(
                opcodeFor(op.type), op.fanIn, op.limbs, op.n);
            ANAHEIM_ASSERT(stats.supported, "unsupported PIM instruction");
            // GPU<->PIM transition overhead (§V-C) applies once per PIM
            // kernel; consecutive PIM instructions share one kernel.
            const double transitionNs = prevWasPim ? 0.0 : 2.0e3;

            // One initial attempt, plus replays charged at full price
            // for every detected-uncorrectable ECC event, then GPU
            // fallback when the retry budget runs out (§VI-A datapath
            // riding raw DRAM arrays).
            double pimNs = stats.timeNs + transitionNs;
            double pimEnergyPj = stats.energyPj;
            double pimChunks = stats.chunksMoved;
            bool fellBack = false;
            if (faultModel) {
                ResilienceStats &res = result.resilience;
                const size_t words = pimWordsRead(op);
                for (uint64_t attempt = 0;; ++attempt) {
                    const FaultEventCounts events = faultModel->sampleEvents(
                        words, static_cast<uint64_t>(i) * retryStreams +
                                   attempt);
                    res.faultyWords += events.faulty;
                    if (!config_.resilience.eccEnabled) {
                        // Nothing detects the corruption: results are
                        // poisoned, and there is no retry signal.
                        res.silentErrors += events.faulty;
                        break;
                    }
                    res.eccCorrected += events.singleBit;
                    if (events.multiBit == 0)
                        break;
                    res.eccUncorrectable += events.multiBit;
                    if (attempt >= config_.resilience.maxPimRetries) {
                        fellBack = true;
                        break;
                    }
                    ++res.pimRetries;
                    pimNs += stats.timeNs;
                    pimEnergyPj += stats.energyPj;
                    pimChunks += stats.chunksMoved;
                }
            }

            GanttEntry entry;
            entry.phase = op.phase;
            entry.device = "PIM";
            entry.cls = kernelClass(op.type);
            entry.startNs = clock;
            clock += pimNs;
            entry.endNs = clock;
            result.timeline.push_back(entry);
            result.timeNsByCategory["PIM"] += pimNs;
            result.energyPj += pimEnergyPj;
            result.pimInternalBytes +=
                pimChunks * config_.dram.chunkBytes;
            prevWasPim = true;

            if (fellBack) {
                // The segment's PIM result is untrustworthy even after
                // the replays: re-run it on the GPU (unfused — its
                // operands live in DRAM, not the cache).
                ++result.resilience.gpuFallbacks;
                const GpuKernelStats gpuStats = gpu_.run(op);
                GanttEntry fallback;
                fallback.phase = op.phase;
                fallback.device = "GPU";
                fallback.cls = kernelClass(op.type);
                fallback.startNs = clock;
                clock += gpuStats.timeNs;
                fallback.endNs = clock;
                result.timeline.push_back(fallback);
                result.timeNsByCategory[kernelClassName(
                    kernelClass(op.type))] += gpuStats.timeNs;
                result.energyPj += gpuStats.energyPj;
                result.gpuDramBytes += gpuStats.traffic.total();
                prevWasPim = false;
            }
            continue;
        }

        const bool fused = fusesWithPrev(i);
        const bool writesCached =
            i + 1 < seq.ops.size() && fusesWithPrev(i + 1);

        // Coherence write-backs (§V-C): a GPU kernel whose outputs feed
        // a PIM kernel must push them out of the L2 first.
        double writeBack = 0.0;
        if (config_.pimEnabled && i + 1 < seq.ops.size() &&
            onPimFlags[i + 1]) {
            for (const auto &operand : op.writes) {
                if (operand.kind == OperandKind::Intermediate)
                    writeBack += operand.limbs * limbBytes(op.n);
            }
        }

        prevWasPim = false;
        const GpuKernelStats stats =
            gpu_.run(op, fused, writeBack, writesCached);
        GanttEntry entry;
        entry.phase = op.phase;
        entry.device = "GPU";
        entry.cls = kernelClass(op.type);
        entry.startNs = clock;
        clock += stats.timeNs;
        entry.endNs = clock;
        result.timeline.push_back(entry);
        result.timeNsByCategory[kernelClassName(kernelClass(op.type))] +=
            stats.timeNs;
        result.energyPj += stats.energyPj;
        result.gpuDramBytes += stats.traffic.total();
    }

    result.totalNs = clock;
    return result;
}

} // namespace anaheim

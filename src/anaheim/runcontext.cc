#include "runcontext.h"

#include <algorithm>

#include "common/logging.h"
#include "planner.h"
#include "trace/validate.h"

namespace anaheim {

namespace {

/** Operand words a PIM op streams through its word-read boundary:
 *  every read operand limb, n words each. */
size_t
pimWordsRead(const KernelOp &op)
{
    size_t limbs = 0;
    for (const auto &operand : op.reads)
        limbs += operand.limbs;
    return std::max(limbs, op.limbs) * op.n;
}

/** Result words a PIM op pushes back through the write drivers. */
size_t
pimWordsWritten(const KernelOp &op)
{
    size_t limbs = 0;
    for (const auto &operand : op.writes)
        limbs += operand.limbs;
    return limbs * op.n;
}

/** Live ciphertext footprint: the working/intermediate operand bytes
 *  of the widest op (Evk / plaintext constants are reproducible from
 *  the keys and never need checkpointing or scrubbing). */
double
liveFootprintBytes(const OpSequence &seq)
{
    double live = 0.0;
    for (const KernelOp &op : seq.ops) {
        double bytes = 0.0;
        for (const auto &operand : op.reads) {
            if (operand.kind == OperandKind::Working ||
                operand.kind == OperandKind::Intermediate)
                bytes += operand.limbs * limbBytes(op.n);
        }
        for (const auto &operand : op.writes) {
            if (operand.kind == OperandKind::Working ||
                operand.kind == OperandKind::Intermediate)
                bytes += operand.limbs * limbBytes(op.n);
        }
        live = std::max(live, bytes);
    }
    return live;
}

} // namespace

RunContext::RunContext(const AnaheimFramework &fw, const OpSequence &seq,
                       uint64_t seedSalt)
    : fw_(fw), config_(fw.config_), rc_(fw.config_.resilience), seq_(seq)
{
    checkTrace(seq_);

    // Fault/ECC event model for the PIM datapath. Only constructed
    // when faults are configured: the all-rates-zero path is untouched.
    {
        FaultConfig faults;
        faults.ber = rc_.ber;
        faults.laneBer = rc_.laneBer;
        faults.retentionBerPerWindow = rc_.retentionBerPerWindow;
        faults.seed = rc_.faultSeed;
        faults.permanentBanks = rc_.permanentBanks;
        faults.permanentLanes = rc_.permanentLanes;
        faults.permanentBankRate = rc_.permanentBankRate;
        if (faults.enabled())
            faultModel_.emplace(faults);
    }

    // Permanent-fault universe and health monitoring. A failed site is
    // "active" while it still carries data; once the monitor
    // quarantines it and execution migrates, it stops corrupting.
    // Permanent damage is a device property: it does NOT depend on the
    // stream salt, so concurrent requests see the same broken banks.
    totalBanks_ = config_.pim.banksPerDieGroup * config_.pim.dieGroups;
    if (faultModel_) {
        for (const PermanentBankFault &bank :
             faultModel_->samplePermanentBanks(
                 config_.pim.dieGroups, config_.pim.banksPerDieGroup))
            failedBankSites_.push_back(
                {FaultSiteId::Kind::Bank, bank.dieGroup, bank.bank});
        for (const PermanentLaneFault &lane :
             faultModel_->config().permanentLanes) {
            if (lane.dieGroup < config_.pim.dieGroups &&
                lane.lane < config_.pim.lanes)
                failedLaneSites_.push_back({FaultSiteId::Kind::MmacLane,
                                            lane.dieGroup, lane.lane});
        }
    }
    if (rc_.health.enabled)
        health_.emplace(rc_.health, config_.pim.dieGroups,
                        config_.pim.banksPerDieGroup, config_.pim.lanes);
    refreshActiveFaults();

    // Stream ids keep every (generation, op, retry attempt) draw
    // distinct while staying reproducible across runs with the same
    // seed. Generation 0 reproduces the pre-checkpoint stream layout;
    // each rollback bumps the generation so replayed segments resample
    // their transient faults. The salt shifts a whole run onto its own
    // stream range so interleaved requests draw independent upsets.
    retryStreams_ = static_cast<uint64_t>(rc_.maxPimRetries) + 1;
    opStreams_ = static_cast<uint64_t>(seq_.ops.size()) + 1;
    streamBase_ = seedSalt * 0x9E3779B97F4A7C15ULL;

    // Fusion analysis: op i consumes its predecessor's intermediates
    // from cache when both run on the GPU in the same phase.
    onPimFlags_.resize(seq_.ops.size());
    for (size_t i = 0; i < seq_.ops.size(); ++i) {
        const KernelOp &op = seq_.ops[i];
        onPimFlags_[i] =
            config_.pimEnabled && op.pimEligible &&
            pimInstrSupported(AnaheimFramework::opcodeFor(op.type),
                              op.fanIn, config_.pim.bufferEntries);
    }

    checksumOn_ = rc_.checksumEnabled;
    if (rc_.scrub.enabled)
        scrubber_.emplace(config_.dram, rc_.scrub);
    // GB/s is bytes-per-ns at the 1e9 scale, so bytes / bw is ns.
    extBw_ = config_.dram.externalBwGBs;
    liveBytes_ = liveFootprintBytes(seq_);
    residentWords_ = static_cast<size_t>(liveBytes_ / 4.0);
    windowNs_ = static_cast<double>(config_.dram.timing.tREFI) *
                config_.dram.timing.tCkNs;
    nextScrubNs_ = scrubber_ ? rc_.scrub.intervalNs : 0.0;
}

const PimKernelModel &
RunContext::pimModel() const
{
    return degradedPim_ ? *degradedPim_ : fw_.pim_;
}

bool
RunContext::fusesWithPrev(size_t i) const
{
    // ModSwitch chains (INTT -> BConv -> NTT) fuse unconditionally as
    // in Cheddar/100x [38]; element-wise chains need the ExtraFuse flag
    // (the +ExtraFuse arm of Fig. 10).
    if (i == 0 || onPimFlags_[i] || onPimFlags_[i - 1])
        return false;
    const KernelOp &op = seq_.ops[i];
    const KernelOp &prev = seq_.ops[i - 1];
    if (prev.phase != op.phase)
        return false;
    bool readsIntermediate = false;
    for (const auto &operand : op.reads)
        readsIntermediate |= operand.kind == OperandKind::Intermediate;
    if (!readsIntermediate)
        return false;
    const bool elementWiseChain =
        kernelClass(op.type) == KernelClass::ElementWise &&
        kernelClass(prev.type) == KernelClass::ElementWise;
    return elementWiseChain ? config_.fusion.extraFuse : true;
}

void
RunContext::refreshActiveFaults()
{
    activeFailedBanks_ = 0;
    activeFailedLanes_ = 0;
    for (const FaultSiteId &site : failedBankSites_)
        activeFailedBanks_ +=
            health_ && health_->isQuarantined(site) ? 0 : 1;
    for (const FaultSiteId &site : failedLaneSites_)
        activeFailedLanes_ +=
            health_ && health_->isQuarantined(site) ? 0 : 1;
}

void
RunContext::chargePhase(const char *phase, const char *device,
                        double durNs, double energyPj)
{
    // Maintenance phases get their own Gantt entries and breakdown
    // categories so recovery overhead is visible in the timeline.
    GanttEntry entry;
    entry.phase = phase;
    entry.device = device;
    entry.cls = KernelClass::ElementWise;
    entry.startNs = clock_;
    clock_ += durNs;
    entry.endNs = clock_;
    entry.energyPj = energyPj;
    entry.bound = BoundBy::None;
    result_.timeline.push_back(entry);
    result_.timeNsByCategory[phase] += durNs;
    result_.energyPj += energyPj;
}

void
RunContext::addSilent(uint64_t words)
{
    if (words == 0)
        return;
    if (checksumOn_)
        pendingSilent_ += words;
    else
        result_.resilience.silentErrors += words;
}

bool
RunContext::canRollBack() const
{
    // Whether a rollback is still available (vs surfacing the event as
    // unrecovered / falling back to the GPU).
    return rc_.checkpoint.enabled &&
           result_.resilience.rollbacks < rc_.checkpoint.maxRollbacks;
}

size_t
RunContext::rollBack(size_t i)
{
    // Roll back to the last checkpoint: restore the live footprint from
    // the snapshot region, drop all in-flight corruption, and resample
    // the replayed segments' faults under a new generation.
    ++result_.resilience.rollbacks;
    ++generation_;
    result_.resilience.replayedSegments += i - checkpointIndex_;
    chargePhase("Rollback", "DRAM",
                liveBytes_ > 0.0 ? 2.0 * liveBytes_ / extBw_ : 0.0,
                2.0 * liveBytes_ * config_.dram.energy.globalIoPerBytePj);
    pendingSilent_ = 0;
    pendingRetCorrectable_ = 0;
    pendingRetUncorrectable_ = 0;
    segmentsSinceCkpt_ = 0;
    prevWasPim_ = false;
    return checkpointIndex_;
}

bool
RunContext::verifyChecksums(double bytes)
{
    // Verify the ciphertext checksums over `bytes` of residues; true
    // when the data is clean.
    ++result_.resilience.checksumChecks;
    chargePhase("Verify", "GPU", bytes / extBw_,
                bytes * config_.dram.energy.nearBankPerBytePj);
    if (pendingSilent_ + pendingRetUncorrectable_ == 0)
        return true;
    ++result_.resilience.checksumMismatches;
    return false;
}

void
RunContext::surfaceUnrecovered()
{
    ++result_.resilience.unrecovered;
    pendingSilent_ = 0;
    pendingRetUncorrectable_ = 0;
}

void
RunContext::countFallback(FallbackCause cause)
{
    ++result_.resilience.gpuFallbacks;
    switch (cause) {
      case FallbackCause::RetryExhausted:
        ++result_.resilience.gpuFallbacksRetryExhausted;
        break;
      case FallbackCause::Uncheckpointed:
        ++result_.resilience.gpuFallbacksUncheckpointed;
        break;
      case FallbackCause::CapacityFloor:
        ++result_.resilience.gpuFallbacksCapacityFloor;
        break;
    }
}

bool
RunContext::recordSuspects(bool banks, bool lanes)
{
    // Feed a detected error to the health monitor against every still-
    // active permanently failed site that could have caused it (the
    // detector cannot localize beyond that). Returns true when a site
    // newly crossed the permanent threshold — the caller migrates.
    // Pure transients leave the suspect set empty, so healthy banks
    // are never quarantined by an upset storm.
    if (!health_)
        return false;
    bool newlyQuarantined = false;
    if (banks) {
        for (const FaultSiteId &site : failedBankSites_)
            newlyQuarantined |= health_->recordError(site, clock_);
    }
    if (lanes) {
        for (const FaultSiteId &site : failedLaneSites_)
            newlyQuarantined |= health_->recordError(site, clock_);
    }
    return newlyQuarantined;
}

size_t
RunContext::quarantineAndMigrate(size_t next, size_t resumeAt)
{
    // Quarantine + remap: re-plan the trace on the healthy subset,
    // migrate the live footprint onto it, and resume — from the last
    // checkpoint when one exists (the segment group replays on the
    // degraded device), else from `resumeAt`. Does NOT consume the
    // rollback budget: the broken site is being removed, not retried.
    // When quarantine leaves too little capacity (the configured floor,
    // or the degraded plan no longer fits), PIM offload is abandoned
    // and the remaining PIM segments are redirected to the GPU.
    ++result_.resilience.migrations;
    const ResourceMap &rm = health_->resources();
    refreshActiveFaults();
    ++generation_; // replays resample their transient faults
    // Control-plane cost: remap tables + lockstep re-fusing.
    chargePhase("Quarantine", "DRAM", 1.0e3, 0.0);
    const PimConfig degraded = config_.pim.degraded(rm);
    const MemoryPlan degradedPlan =
        PimMemoryPlanner(config_.dram, degraded).plan(seq_);
    if (health_->belowCapacityFloor() || !degradedPlan.fits) {
        pimOffline_ = true;
        degradedPim_.reset();
    } else {
        degradedPim_.emplace(config_.dram, degraded);
        // One pass over the live footprint into the new layout.
        chargePhase(
            "Migrate", "DRAM",
            liveBytes_ > 0.0 ? 2.0 * liveBytes_ / extBw_ : 0.0,
            2.0 * liveBytes_ * config_.dram.energy.globalIoPerBytePj);
    }
    pendingSilent_ = 0;
    pendingRetCorrectable_ = 0;
    pendingRetUncorrectable_ = 0;
    segmentsSinceCkpt_ = 0;
    prevWasPim_ = false;
    if (rc_.checkpoint.enabled) {
        result_.resilience.replayedSegments += next - checkpointIndex_;
        return checkpointIndex_;
    }
    return resumeAt;
}

void
RunContext::advanceClockTo(double ns)
{
    ANAHEIM_ASSERT(ns >= clock_, "run clock cannot move backwards");
    clock_ = ns;
}

const KernelOp *
RunContext::nextOp() const
{
    return i_ < seq_.ops.size() ? &seq_.ops[i_] : nullptr;
}

bool
RunContext::nextOnPim() const
{
    return i_ < seq_.ops.size() && onPimFlags_[i_] && !pimOffline_;
}

const char *
RunContext::nextDevice() const
{
    return nextOnPim() ? "PIM" : "GPU";
}

bool
RunContext::nextCostFree() const
{
    return i_ >= seq_.ops.size() && !checksumOn_;
}

void
RunContext::stepEndOfTrace()
{
    // End-of-trace boundary: the final outputs get one last
    // verification before they are decrypted.
    if (checksumOn_) {
        if (!verifyChecksums(liveBytes_)) {
            if (recordSuspects(!rc_.eccEnabled, true) &&
                rc_.checkpoint.enabled) {
                i_ = quarantineAndMigrate(i_, i_);
                return;
            }
            if (canRollBack()) {
                i_ = rollBack(i_);
                return;
            }
            surfaceUnrecovered();
        }
    }
    finished_ = true;
}

bool
RunContext::runMaintenance()
{
    ResilienceStats &res = result_.resilience;
    // Retention decay accumulates on the resident footprint per
    // crossed refresh window; windows are keyed by absolute index,
    // so replays never resample a window already paid for.
    if (faultModel_ && rc_.retentionBerPerWindow > 0.0 &&
        windowNs_ > 0.0) {
        const uint64_t window =
            static_cast<uint64_t>(clock_ / windowNs_);
        while (retentionWindow_ < window) {
            ++retentionWindow_;
            const FaultEventCounts decay = faultModel_->sampleRetention(
                retentionWindow_, residentWords_);
            res.retentionFaultyWords += decay.faulty;
            if (!rc_.eccEnabled) {
                // Raw arrays: decay is indistinguishable from data.
                addSilent(decay.faulty);
            } else {
                pendingRetCorrectable_ += decay.singleBit;
                pendingRetUncorrectable_ += decay.multiBit;
            }
        }
    }
    if (scrubber_ && clock_ >= nextScrubNs_) {
        // One pass covers every missed interval (a long GPU kernel
        // may straddle several).
        while (clock_ >= nextScrubNs_)
            nextScrubNs_ += rc_.scrub.intervalNs;
        ++res.scrubPasses;
        const ScrubPassStats pass = scrubber_->pass(liveBytes_);
        chargePhase("Scrub", "DRAM", pass.timeNs, pass.energyPj);
        res.scrubCorrected += pendingRetCorrectable_;
        pendingRetCorrectable_ = 0;
        if (pendingRetUncorrectable_ > 0) {
            res.scrubUncorrectable += pendingRetUncorrectable_;
            pendingRetUncorrectable_ = 0;
            if (canRollBack()) {
                i_ = rollBack(i_);
                return true;
            }
            surfaceUnrecovered();
        }
    }
    if (rc_.checkpoint.enabled && i_ > checkpointIndex_ &&
        segmentsSinceCkpt_ >= rc_.checkpoint.intervalSegments) {
        // Verify before snapshotting: never checkpoint corrupt
        // state, or rollback would replay the corruption forever.
        if (checksumOn_ && !verifyChecksums(liveBytes_)) {
            if (recordSuspects(!rc_.eccEnabled, true)) {
                i_ = quarantineAndMigrate(i_, i_);
                return true;
            }
            if (canRollBack()) {
                i_ = rollBack(i_);
                return true;
            }
            surfaceUnrecovered();
            segmentsSinceCkpt_ = 0; // retry next interval
        } else {
            ++res.checkpoints;
            chargePhase(
                "Checkpoint", "DRAM",
                liveBytes_ > 0.0 ? 2.0 * liveBytes_ / extBw_ : 0.0,
                2.0 * liveBytes_ * config_.dram.energy.globalIoPerBytePj);
            checkpointIndex_ = i_;
            segmentsSinceCkpt_ = 0;
        }
    }
    return false;
}

void
RunContext::stepPim(const KernelOp &op, bool suppressTransition)
{
    ResilienceStats &res = result_.resilience;
    const PimExecStats stats = pimModel().execute(
        AnaheimFramework::opcodeFor(op.type), op.fanIn, op.limbs, op.n);
    ANAHEIM_ASSERT(stats.supported, "unsupported PIM instruction");
    // GPU<->PIM transition overhead (§V-C) applies once per PIM
    // kernel; consecutive PIM instructions share one kernel, and a
    // batched follower rides the leader's launch.
    const double transitionNs =
        prevWasPim_ || suppressTransition ? 0.0 : 2.0e3;

    // One initial attempt, plus replays charged at full price
    // for every detected-uncorrectable ECC event; when the
    // retry budget runs out, roll back to the last checkpoint
    // if one is available, else fall back to the GPU (§VI-A
    // datapath riding raw DRAM arrays).
    double pimNs = stats.timeNs + transitionNs;
    double pimEnergyPj = stats.energyPj;
    double pimChunks = stats.chunksMoved;
    bool fellBack = false;
    FallbackCause cause = FallbackCause::RetryExhausted;
    bool needRollback = false;
    bool needMigrate = false;
    if (faultModel_) {
        const uint64_t opStream =
            streamBase_ + generation_ * opStreams_ + i_;
        // Permanent-bank damage is deterministic: the same
        // share of the op's accesses lands on dead banks on
        // every attempt and every generation — only a remap
        // (or retirement of the banks) makes it go away.
        const size_t words = pimWordsRead(op) + pimWordsWritten(op);
        const uint64_t permWords = permanentFaultyWords(
            words, activeFailedBanks_, totalBanks_);
        if (rc_.ber > 0.0 || permWords > 0) {
            // Storage sites: operand reads plus the result
            // write-back ride the same ECC boundary.
            for (uint64_t attempt = 0;; ++attempt) {
                const FaultEventCounts events = faultModel_->sampleEvents(
                    words, opStream * retryStreams_ + attempt);
                res.faultyWords += events.faulty + permWords;
                res.permanentFaultyWords += permWords;
                if (!rc_.eccEnabled) {
                    // Nothing at the word boundary detects the
                    // corruption: no retry signal; checksums
                    // are the only remaining net.
                    addSilent(events.faulty + permWords);
                    break;
                }
                res.eccCorrected += events.singleBit;
                const uint64_t multi = events.multiBit + permWords;
                if (multi == 0)
                    break;
                res.eccUncorrectable += multi;
                if (attempt >= rc_.maxPimRetries) {
                    // Escalation past the retry budget: a site
                    // crossing the permanent threshold is
                    // quarantined and execution migrates off
                    // it; otherwise roll back while the budget
                    // lasts, else abandon the segment to the
                    // GPU.
                    if (permWords > 0 && recordSuspects(true, false)) {
                        needMigrate = true;
                    } else if (canRollBack()) {
                        needRollback = true;
                    } else {
                        fellBack = true;
                        cause = rc_.checkpoint.enabled
                                    ? FallbackCause::RetryExhausted
                                    : FallbackCause::Uncheckpointed;
                    }
                    break;
                }
                ++res.pimRetries;
                pimNs += stats.timeNs;
                pimEnergyPj += stats.energyPj;
                pimChunks += stats.chunksMoved;
            }
        }
        if ((rc_.laneBer > 0.0 || activeFailedLanes_ > 0) &&
            !needRollback && !fellBack && !needMigrate) {
            // Post-multiply lane flips: no ECC reaches the
            // 28-bit datapath, so every hit is silent here.
            // Dead lanes corrupt their share of every op's
            // multiplies the same way — deterministically.
            const size_t laneOps = static_cast<size_t>(op.modMults());
            const FaultEventCounts lane =
                faultModel_->sampleLaneEvents(laneOps, opStream);
            const uint64_t permLane = permanentFaultyWords(
                laneOps, activeFailedLanes_, config_.pim.lanes);
            res.laneFaults += lane.faulty + permLane;
            res.permanentLaneFaults += permLane;
            addSilent(lane.faulty + permLane);
        }
    }

    GanttEntry entry;
    entry.phase = op.phase;
    entry.device = "PIM";
    entry.cls = kernelClass(op.type);
    entry.startNs = clock_;
    clock_ += pimNs;
    entry.endNs = clock_;
    entry.energyPj = pimEnergyPj;
    // Near-bank PIM time is internal-streaming limited by
    // construction (§VI-A all-bank lockstep).
    entry.bound = BoundBy::Bandwidth;
    result_.timeline.push_back(entry);
    result_.timeNsByCategory["PIM"] += pimNs;
    result_.energyPj += pimEnergyPj;
    result_.pimInternalBytes += pimChunks * config_.dram.chunkBytes;
    prevWasPim_ = true;

    if (needMigrate) {
        // Quarantine + remap + replay. Without a checkpoint
        // only op i re-runs — its operands are intact, since
        // failed attempts never commit.
        i_ = quarantineAndMigrate(i_ + 1, i_);
        return;
    }
    if (needRollback) {
        // Replay the whole segment group from the snapshot —
        // op i included, hence the +1 before rewinding.
        i_ = rollBack(i_ + 1);
        return;
    }
    if (fellBack) {
        // The segment's PIM result is untrustworthy even after
        // the replays: re-run it on the GPU (unfused — its
        // operands live in DRAM, not the cache).
        countFallback(cause);
        const GpuKernelStats gpuStats = fw_.gpu_.run(op);
        GanttEntry fallback;
        fallback.phase = op.phase;
        fallback.device = "GPU";
        fallback.cls = kernelClass(op.type);
        fallback.startNs = clock_;
        clock_ += gpuStats.timeNs;
        fallback.endNs = clock_;
        fallback.energyPj = gpuStats.energyPj;
        fallback.bound = gpuStats.memoryBound() ? BoundBy::Bandwidth
                                                : BoundBy::Compute;
        result_.timeline.push_back(fallback);
        result_.timeNsByCategory[kernelClassName(kernelClass(op.type))] +=
            gpuStats.timeNs;
        result_.energyPj += gpuStats.energyPj;
        result_.gpuDramBytes += gpuStats.traffic.total();
        prevWasPim_ = false;
    } else if (checksumOn_ && i_ + 1 < seq_.ops.size() &&
               !onPimFlags_[i_ + 1]) {
        // Coherence write-back boundary (§V-C): the GPU is
        // about to consume this segment's outputs — verify
        // their checksums before corruption can propagate.
        if (!verifyChecksums(op.writeBytes())) {
            // Checksums are the only detector that sees dead
            // lanes (and dead banks with ECC off): those sites
            // are the permanent suspects here.
            if (recordSuspects(!rc_.eccEnabled, true)) {
                if (rc_.checkpoint.enabled) {
                    i_ = quarantineAndMigrate(i_ + 1, i_);
                    return;
                }
                // Quarantine stops future corruption, but the
                // committed outputs are already lost without a
                // snapshot to replay from.
                surfaceUnrecovered();
                i_ = quarantineAndMigrate(i_ + 1, i_ + 1);
                return;
            }
            if (canRollBack()) {
                i_ = rollBack(i_ + 1);
                return;
            }
            surfaceUnrecovered();
        }
    }
    ++i_;
    ++segmentsSinceCkpt_;
}

void
RunContext::stepGpu(const KernelOp &op)
{
    // PIM-eligible ops arriving after the capacity floor tripped
    // are redirected here; each redirection is a counted fallback.
    if (onPimFlags_[i_] && pimOffline_)
        countFallback(FallbackCause::CapacityFloor);

    const bool fused = fusesWithPrev(i_);
    const bool writesCached =
        i_ + 1 < seq_.ops.size() && fusesWithPrev(i_ + 1);

    // Coherence write-backs (§V-C): a GPU kernel whose outputs feed
    // a PIM kernel must push them out of the L2 first.
    double writeBack = 0.0;
    if (config_.pimEnabled && !pimOffline_ && i_ + 1 < seq_.ops.size() &&
        onPimFlags_[i_ + 1]) {
        for (const auto &operand : op.writes) {
            if (operand.kind == OperandKind::Intermediate)
                writeBack += operand.limbs * limbBytes(op.n);
        }
    }

    prevWasPim_ = false;
    const GpuKernelStats stats =
        fw_.gpu_.run(op, fused, writeBack, writesCached);
    GanttEntry entry;
    entry.phase = op.phase;
    entry.device = "GPU";
    entry.cls = kernelClass(op.type);
    entry.startNs = clock_;
    clock_ += stats.timeNs;
    entry.endNs = clock_;
    entry.energyPj = stats.energyPj;
    entry.bound =
        stats.memoryBound() ? BoundBy::Bandwidth : BoundBy::Compute;
    result_.timeline.push_back(entry);
    result_.timeNsByCategory[kernelClassName(kernelClass(op.type))] +=
        stats.timeNs;
    result_.energyPj += stats.energyPj;
    result_.gpuDramBytes += stats.traffic.total();
    ++i_;
    ++segmentsSinceCkpt_;
}

void
RunContext::step(bool suppressTransition)
{
    ANAHEIM_ASSERT(!finished_, "step() after the run completed");
    if (i_ >= seq_.ops.size()) {
        stepEndOfTrace();
        return;
    }
    // --- Time-driven maintenance ahead of op i ---
    if (runMaintenance())
        return; // a recovery action rewound the trace
    const KernelOp &op = seq_.ops[i_];
    if (onPimFlags_[i_] && !pimOffline_)
        stepPim(op, suppressTransition);
    else
        stepGpu(op);
}

RunResult
RunContext::finish()
{
    ANAHEIM_ASSERT(finished_, "finish() before the run completed");
    if (health_) {
        ResilienceStats &res = result_.resilience;
        res.healthErrorEvents = health_->errorEvents();
        res.quarantinedBanks = health_->resources().quarantinedBanks();
        res.quarantinedLanes = health_->resources().quarantinedLanes();
        result_.pimCapacityFraction = health_->capacityFraction();
    }
    result_.pimOffline = pimOffline_;
    result_.totalNs = clock_;
    // Canonical timeline order — (startNs, device, phase) — so trace
    // exports and golden comparisons are reproducible regardless of
    // host thread count or future scheduler changes. Execution already
    // appends in start order; the stable sort only tie-breaks.
    std::stable_sort(result_.timeline.begin(), result_.timeline.end(),
                     timelineEntryLess);
    ANAHEIM_ASSERT(timelineIsCanonical(result_.timeline),
                   "timeline sort failed");
    return std::move(result_);
}

} // namespace anaheim

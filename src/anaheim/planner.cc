#include "planner.h"

#include <algorithm>

#include "pim/layout.h"

namespace anaheim {

MemoryPlan
PimMemoryPlanner::plan(const OpSequence &seq) const
{
    return planWith(seq, pim_);
}

MemoryPlan
PimMemoryPlanner::plan(const OpSequence &seq,
                       const ResourceMap &resources) const
{
    return planWith(seq, pim_.degraded(resources));
}

MemoryPlan
PimMemoryPlanner::planWith(const OpSequence &seq,
                           const PimConfig &pim) const
{
    MemoryPlan result;
    for (size_t i = 0; i < seq.ops.size(); ++i) {
        const KernelOp &op = seq.ops[i];
        if (!op.pimEligible)
            continue;
        ++result.pimKernels;

        // Each operand polynomial occupies one row group per limb in
        // its column-group slice; operands sharing a PolyGroup share
        // rows across (up to) the column-group count. Offline banks
        // deepen the row groups: the same chunks stripe over fewer
        // healthy banks.
        ColumnPartitionLayout layout(dram_, pim.banksPerDieGroup, op.n,
                                     8, pim.offlineBanks);
        const size_t columnGroups = layout.columnGroups();
        auto rowsFor = [&](const std::vector<Operand> &operands) {
            // Limbs per die group (each group holds its own share).
            size_t totalLimbs = 0;
            for (const auto &operand : operands)
                totalLimbs += operand.limbs;
            const size_t limbsPerGroup =
                (totalLimbs + pim.dieGroups - 1) / pim.dieGroups;
            // PolyGroups pack polynomials columnGroups-wide.
            const size_t packed =
                (limbsPerGroup + columnGroups - 1) / columnGroups;
            return packed * layout.rowsPerRowGroup();
        };
        const size_t rows = rowsFor(op.reads) + rowsFor(op.writes);
        if (rows > result.peakRowsPerBank) {
            result.peakRowsPerBank = rows;
            result.peakOpIndex = i;
        }
    }

    // Per-bank row budget from device capacity: bytes per bank / row.
    const double bankBytes =
        dram_.capacityBytes / static_cast<double>(dram_.totalBanks());
    const size_t rowBudget =
        static_cast<size_t>(bankBytes / dram_.rowBytes);
    result.fits = result.peakRowsPerBank <= rowBudget;
    return result;
}

} // namespace anaheim

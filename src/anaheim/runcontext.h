/**
 * @file
 * Per-run execution context: all the device state one trace carries
 * through `AnaheimFramework::execute` — fault streams, checkpoints,
 * health/quarantine, pending corruption, the Gantt timeline — as an
 * explicit object instead of method-local state, so several runs can
 * interleave on one simulated device pair (DESIGN.md §15).
 *
 * `execute()` is exactly `while (!ctx.done()) ctx.step();` followed by
 * `ctx.finish()`. The serving scheduler (src/serve) instead advances
 * many contexts in global simulated-time order, jumping each context's
 * clock to its dispatch time before stepping, which is what lets GPU
 * work of one trace overlap PIM work of another while every per-run
 * result stays a pure function of (config, trace, seeds).
 */

#ifndef ANAHEIM_ANAHEIM_RUNCONTEXT_H
#define ANAHEIM_ANAHEIM_RUNCONTEXT_H

#include <cstdint>
#include <optional>
#include <vector>

#include "anaheim/framework.h"
#include "dram/scrub.h"
#include "pim/kernelmodel.h"
#include "sim/fault.h"
#include "sim/health.h"
#include "trace/kernel.h"

namespace anaheim {

class RunContext
{
  public:
    /**
     * Validates the trace and sets up all per-run state. `fw` and
     * `seq` must outlive the context. `seedSalt` offsets the transient
     * fault stream ids so concurrent requests draw independent upsets
     * from one device-wide fault universe (permanent faults are a
     * device property and stay common to all salts); salt 0 is bitwise
     * identical to a plain execute() run.
     */
    RunContext(const AnaheimFramework &fw, const OpSequence &seq,
               uint64_t seedSalt = 0);

    /** True once the end-of-trace boundary (final verify included) has
     *  fully resolved; finish() is then legal and step() is not. */
    bool done() const { return finished_; }

    double clock() const { return clock_; }

    /** Jump this run's clock forward to global sim time `ns` (the
     *  scheduler's dispatch time). Never moves backwards. */
    void advanceClockTo(double ns);

    const OpSequence &sequence() const { return seq_; }

    /** The op the next step() executes, or nullptr when the next step
     *  is the end-of-trace boundary. */
    const KernelOp *nextOp() const;

    /** True when the next step() dispatches on PIM (offload planned
     *  and the capacity floor has not tripped). */
    bool nextOnPim() const;

    /** "PIM" or "GPU" — the resource the next step() occupies. The
     *  end-of-trace verify is priced on the GPU. */
    const char *nextDevice() const;

    /** True when the next step() consumes no device time at all: the
     *  end-of-trace boundary with checksums disabled. Schedulers may
     *  run it without claiming a resource slot. */
    bool nextCostFree() const;

    /**
     * Execute one scheduling step: the end-of-trace boundary, one
     * recovery action (rollback / quarantine-migrate), or one op with
     * its maintenance preamble — exactly one iteration of the classic
     * execute() loop. `suppressTransition` drops the GPU<->PIM
     * transition charge for a PIM step: batched followers ride the
     * leader's kernel launch.
     */
    void step(bool suppressTransition = false);

    /** Close out the run (health stats, canonical timeline sort) and
     *  surrender the result. Requires done(); call once. */
    RunResult finish();

    // --- Live health / resilience visibility (DESIGN.md §16) ---
    // The serving scheduler polls these after every step so a
    // mid-serve quarantine re-prices all queued work instead of
    // dispatching against the healthy-device plan.

    /** Counters accumulated so far (valid mid-run, unlike finish()). */
    const ResilienceStats &resilienceStats() const
    {
        return result_.resilience;
    }

    /** Healthy-bank fraction right now (1.0 without health
     *  monitoring or quarantine). */
    double capacityFraction() const
    {
        return health_ ? health_->capacityFraction() : 1.0;
    }

    /** True once the capacity floor tripped and remaining PIM
     *  segments run on the GPU. */
    bool pimOfflineNow() const { return pimOffline_; }

    /** The run's quarantine map, or nullptr when health monitoring is
     *  off. Valid only while the context is alive. */
    const ResourceMap *healthResources() const
    {
        return health_ ? &health_->resources() : nullptr;
    }

    /** Live ciphertext footprint in bytes — what a preemption
     *  save/restore pass moves (same quantity a checkpoint snapshots). */
    double liveSnapshotBytes() const { return liveBytes_; }

    /** Bytes-per-ns external bandwidth used to price snapshot-sized
     *  maintenance passes (checkpoint, rollback, preemption). */
    double externalBwBytesPerNs() const { return extBw_; }

  private:
    enum class FallbackCause { RetryExhausted, Uncheckpointed,
                               CapacityFloor };

    const PimKernelModel &pimModel() const;
    bool fusesWithPrev(size_t i) const;
    void refreshActiveFaults();
    void chargePhase(const char *phase, const char *device, double durNs,
                     double energyPj);
    void addSilent(uint64_t words);
    bool canRollBack() const;
    size_t rollBack(size_t i);
    bool verifyChecksums(double bytes);
    void surfaceUnrecovered();
    void countFallback(FallbackCause cause);
    bool recordSuspects(bool banks, bool lanes);
    size_t quarantineAndMigrate(size_t next, size_t resumeAt);

    /** End-of-trace boundary; sets finished_ unless a recovery action
     *  rewound the trace. */
    void stepEndOfTrace();
    /** Time-driven maintenance ahead of op i_; true when a recovery
     *  action consumed the step (the op does not execute). */
    bool runMaintenance();
    void stepPim(const KernelOp &op, bool suppressTransition);
    void stepGpu(const KernelOp &op);

    const AnaheimFramework &fw_;
    const AnaheimConfig &config_;
    const ResilienceConfig &rc_;
    const OpSequence &seq_;

    RunResult result_;
    double clock_ = 0.0;
    bool prevWasPim_ = false;
    bool finished_ = false;
    size_t i_ = 0;

    std::optional<FaultModel> faultModel_;
    size_t totalBanks_ = 0;
    std::vector<FaultSiteId> failedBankSites_;
    std::vector<FaultSiteId> failedLaneSites_;
    std::optional<HealthMonitor> health_;
    size_t activeFailedBanks_ = 0;
    size_t activeFailedLanes_ = 0;
    std::optional<PimKernelModel> degradedPim_;
    bool pimOffline_ = false;

    uint64_t retryStreams_ = 1;
    uint64_t opStreams_ = 1;
    /** Salt offset folded into every transient stream id. */
    uint64_t streamBase_ = 0;

    std::vector<bool> onPimFlags_;
    bool checksumOn_ = false;
    std::optional<ScrubEngine> scrubber_;
    double extBw_ = 1.0;
    double liveBytes_ = 0.0;
    size_t residentWords_ = 0;
    double windowNs_ = 0.0;

    uint64_t generation_ = 0;
    size_t checkpointIndex_ = 0;
    size_t segmentsSinceCkpt_ = 0;
    uint64_t retentionWindow_ = 0;
    double nextScrubNs_ = 0.0;
    uint64_t pendingSilent_ = 0;
    uint64_t pendingRetCorrectable_ = 0;
    uint64_t pendingRetUncorrectable_ = 0;
};

} // namespace anaheim

#endif // ANAHEIM_ANAHEIM_RUNCONTEXT_H

/**
 * @file
 * The Anaheim execution framework (§V): takes a kernel trace, decides
 * which kernels run on the GPU and which are offloaded to PIM, inserts
 * the coherence write-backs of §V-C, and plays the schedule out on a
 * single stream (GPU and PIM kernels never overlap, §V-C "no
 * pipelining") against the GPU roofline and the PIM/DRAM simulator.
 */

#ifndef ANAHEIM_ANAHEIM_FRAMEWORK_H
#define ANAHEIM_ANAHEIM_FRAMEWORK_H

#include <map>
#include <string>
#include <vector>

#include "dram/scrub.h"
#include "gpu/gpumodel.h"
#include "pim/kernelmodel.h"
#include "sim/fault.h"
#include "sim/health.h"
#include "trace/kernel.h"

namespace anaheim {

struct FusionFlags {
    /** PAccum/CAccum formation — applied by the trace builders. */
    bool basicFuse = true;
    /** GPU-side producer-consumer fusion of element-wise chains
     *  (ModDown fusion of [38] and friends). */
    bool extraFuse = true;
    /** Automorphism fused into accumulation — applied by builders. */
    bool autFuse = true;
};

/** Segment-group checkpointing of the live ciphertext footprint. A
 *  snapshot every `intervalSegments` trace segments lets detected
 *  corruption (uncorrectable ECC, scrub hits, checksum mismatches)
 *  roll back and replay from the last clean state instead of
 *  abandoning the whole PIM segment to the GPU. */
struct CheckpointConfig {
    bool enabled = false;
    /** Trace segments (ops) between snapshots. */
    size_t intervalSegments = 16;
    /** Rollbacks allowed per run before corruption is surfaced as
     *  unrecovered (bounds replay storms on persistent faults). */
    size_t maxRollbacks = 8;
};

/**
 * Reliability knobs for the PIM datapath (§VI-A operand reads ride raw
 * DRAM arrays). With every rate at 0 and scrub / checksums /
 * checkpointing disabled (the defaults), the resilience machinery is
 * bypassed entirely and execution is bitwise identical to the
 * fault-free model.
 */
struct ResilienceConfig {
    /** Raw per-bit error probability per PIM codeword access on the
     *  storage sites (operand reads and result write-backs). */
    double ber = 0.0;
    /** Per-bit transient-flip probability per MMAC lane multiply on
     *  the 28-bit post-multiply datapath. No ECC reaches it: every
     *  lane fault is silent until a ciphertext checksum catches it. */
    double laneBer = 0.0;
    /** Per-bit retention-decay probability per refresh window for the
     *  resident ciphertext footprint. */
    double retentionBerPerWindow = 0.0;
    /** Fault-site seed; identical seeds reproduce identical runs. */
    uint64_t faultSeed = 0x0ddfa117u;
    /** On-die SEC-DED (39,32) at the PIM word-read boundary. Without
     *  it, faults go undetected (no retry/fallback, silent errors). */
    bool eccEnabled = true;
    /** Replays of a PIM segment after a detected-uncorrectable ECC
     *  event before recovering (checkpoint rollback when enabled,
     *  else GPU fallback). */
    size_t maxPimRetries = 2;
    /** Per-limb rolling checksums over the ciphertext residues,
     *  verified at coherence write-back boundaries. The only detector
     *  that sees lane faults and ECC-off corruption. */
    bool checksumEnabled = false;
    /** Periodic ECC scrub passes over the live footprint. */
    ScrubConfig scrub;
    /** Segment-group checkpoint / rollback replay. */
    CheckpointConfig checkpoint;

    /** Permanently failed banks injected into the run (in addition to
     *  the Monte-Carlo draw at `permanentBankRate`). Unlike transient
     *  upsets these fail every retry, every replay, every generation. */
    std::vector<PermanentBankFault> permanentBanks;
    /** Permanently broken MMAC lanes: silent corruption on every op
     *  (no ECC on the lane datapath; only checksums detect it). */
    std::vector<PermanentLaneFault> permanentLanes;
    /** Per-bank permanent-failure probability, sampled
     *  deterministically from `faultSeed` per physical bank. */
    double permanentBankRate = 0.0;
    /** Health monitoring + quarantine/remap policy. Disabled, a
     *  permanent fault burns the rollback budget and falls back to
     *  the GPU; enabled, repeated failures at one site quarantine it
     *  and execution migrates onto the healthy subset. */
    HealthConfig health;
};

/** Observability knobs (src/obs). Tracing can also be forced globally
 *  with ANAHEIM_TRACE=1 / obs::setTracingEnabled(). */
struct ObsConfig {
    /** Record this framework's simulated timeline into the global
     *  trace collector even when host-span tracing is off. */
    bool trace = false;
};

/** Arrival process the serving scheduler (src/serve) drives streams
 *  with. */
enum class ArrivalKind {
    Closed,      ///< next request starts when the previous completes
    OpenPoisson, ///< open-loop Poisson arrivals at offeredRps
};

/** Streaming time-series telemetry for a serving run (DESIGN.md §17):
 *  the scheduler samples per-device and per-tenant series on a fixed
 *  simulated-time tick and feeds a fast/slow-window SLO burn-rate
 *  evaluator whose alert episodes land on the trace's `Alert` lane. */
struct ServeTelemetryConfig {
    /** Sampling tick, ns of simulated time; 0 disables telemetry
     *  entirely (the scheduler never touches the series registry). */
    double tickNs = 0.0;
    /** Deadline-met ratio objective the burn-rate alert guards. */
    double sloTarget = 0.95;
    /** Fast window, in ticks (catches sharp burns). */
    size_t fastWindowTicks = 3;
    /** Slow window, in ticks (filters single-tick blips). */
    size_t slowWindowTicks = 12;
    /** Burn rate BOTH windows must reach to fire (1.0 = burning the
     *  error budget exactly at the objective rate). */
    double burnThreshold = 1.0;
};

/** Multi-tenant serving knobs (src/serve, DESIGN.md §15/§16): how many
 *  client streams the scheduler admits, how requests arrive, and the
 *  batching / overlap / admission / SLO policies. */
struct ServeConfig {
    /** Concurrent client streams (tenants). */
    size_t streams = 8;
    ArrivalKind arrival = ArrivalKind::OpenPoisson;
    /** Aggregate offered load across all streams, requests/second of
     *  simulated time (split evenly per stream). */
    double offeredRps = 100.0;
    /** Requests generated per stream before the arrival process
     *  stops. */
    size_t requestsPerStream = 4;
    /** Seed for the deterministic Poisson arrival draws. */
    uint64_t arrivalSeed = 0x5eedca11u;
    /** Streams cycle through priority classes 0..priorityClasses-1
     *  (0 = highest); dispatch breaks start-time ties by class. */
    size_t priorityClasses = 1;
    /** Admission control: an arrival finding this many requests
     *  already waiting on its stream is rejected. */
    size_t maxQueuedPerStream = 64;
    /** Batch compatible element-wise PIM dispatches across streams
     *  (same opcode/degree/limbs/fan-in -> one fused kernel, the
     *  followers skip the GPU<->PIM transition). */
    bool batching = true;
    /** Ciphertexts per fused PIM dispatch. */
    size_t maxBatch = 8;
    /** Clock GPU and PIM as independent resources so independent
     *  traces overlap; off = the serial back-to-back baseline. */
    bool overlap = true;

    // --- SLO / resilience policies (DESIGN.md §16) ---
    /** Relative completion deadline (ns of simulated time after
     *  arrival) every request carries; 0 disables deadline-based
     *  shedding. A queued request whose earliest-possible completion
     *  (dispatch time + fault-free service estimate) already misses
     *  its deadline is shed at dispatch instead of wasting device
     *  time on a guaranteed SLO violation. */
    double deadlineNs = 0.0;
    /** Per-class relative deadlines: stream s uses
     *  deadlineClassNs[s % size()] when non-empty (deadlineNs
     *  otherwise), mirroring the priority-class round-robin. A class
     *  entry of 0 leaves that stream deadline-free. */
    std::vector<double> deadlineClassNs = {};
    /** Token-bucket per-tenant rate limiter: sustained request rate
     *  (requests/second of simulated time) each stream may submit;
     *  0 disables. Arrivals finding the bucket empty are rejected
     *  before touching the queue. */
    double rateLimitRps = 0.0;
    /** Token-bucket burst capacity (maximum saved-up tokens). */
    double rateLimitBurst = 4.0;
    /** Priority preemption: ready work of a strictly higher priority
     *  class interrupts a started lower-priority run at its next step
     *  boundary. The victim's state is checkpoint-coordinated (its
     *  live footprint is snapshotted out and restored at resume,
     *  priced on the device like a §10 checkpoint), so the preempted
     *  run resumes bitwise-identically; candidate order becomes
     *  (priority, dispatch time) instead of (dispatch time,
     *  priority). */
    bool preemption = false;

    /** Time-series telemetry + burn-rate alerting (DESIGN.md §17). */
    ServeTelemetryConfig telemetry;
};

struct AnaheimConfig {
    GpuConfig gpu;
    LibraryProfile library;
    DramConfig dram;
    PimConfig pim;
    bool pimEnabled = true;
    FusionFlags fusion;
    ResilienceConfig resilience;
    ObsConfig obs;
    ServeConfig serve;

    /** A100 80GB with near-bank PIM (Table III column 1). */
    static AnaheimConfig a100NearBank();
    /** A100 80GB with custom-HBM PIM (column 2). */
    static AnaheimConfig a100CustomHbm();
    /** RTX 4090 with near-bank PIM (column 3). */
    static AnaheimConfig rtx4090NearBank();
};

/** What limited a timeline entry's duration in the roofline model. */
enum class BoundBy {
    None,      ///< maintenance phases (Scrub/Checkpoint/...)
    Compute,   ///< int-op throughput bound (GPU)
    Bandwidth, ///< DRAM/internal streaming bound (GPU memory side, PIM)
};

struct GanttEntry {
    std::string phase;
    std::string device; ///< "GPU", "PIM" or "DRAM" (maintenance)
    KernelClass cls;
    double startNs = 0.0;
    double endNs = 0.0;
    /** Energy attributed to this entry (0 for entries recorded before
     *  attribution existed; always set by execute()). */
    double energyPj = 0.0;
    BoundBy bound = BoundBy::None;
};

/** The canonical `RunResult::timeline` order enforced by execute():
 *  (startNs, device, phase) ascending — stable across thread counts so
 *  trace exports and golden tests are reproducible. */
bool timelineEntryLess(const GanttEntry &a, const GanttEntry &b);

/** True when `timeline` is in canonical order. */
bool timelineIsCanonical(const std::vector<GanttEntry> &timeline);

/** Fault/ECC/recovery counters accumulated over one execution. */
struct ResilienceStats {
    /** PIM codeword reads with >= 1 flipped bit. */
    uint64_t faultyWords = 0;
    /** Single-bit upsets repaired by SEC-DED (data exact). */
    uint64_t eccCorrected = 0;
    /** Detected-uncorrectable (double-bit) ECC events. */
    uint64_t eccUncorrectable = 0;
    /** Corrupt words delivered as clean (all faults with ECC off). */
    uint64_t silentErrors = 0;
    /** PIM segment replays triggered by uncorrectable events. */
    uint64_t pimRetries = 0;
    /** PIM segments abandoned to the GPU after retries ran out. */
    uint64_t gpuFallbacks = 0;
    /** MMAC lane multiplies hit by a post-multiply transient flip
     *  (always silent at the unit; only checksums can catch them). */
    uint64_t laneFaults = 0;
    /** Resident words hit by retention decay between refreshes. */
    uint64_t retentionFaultyWords = 0;
    /** Periodic scrub passes executed. */
    uint64_t scrubPasses = 0;
    /** Single-bit retention decays repaired in place by a scrub. */
    uint64_t scrubCorrected = 0;
    /** Uncorrectable (multi-bit) words surfaced by a scrub pass. */
    uint64_t scrubUncorrectable = 0;
    /** Ciphertext checksum verifications performed. */
    uint64_t checksumChecks = 0;
    /** Verifications that caught corrupt residues. */
    uint64_t checksumMismatches = 0;
    /** Checkpoint snapshots taken. */
    uint64_t checkpoints = 0;
    /** Rollbacks to the last checkpoint. */
    uint64_t rollbacks = 0;
    /** Trace segments re-executed by rollback replays. */
    uint64_t replayedSegments = 0;
    /** Detected corruption events with no recovery path left
     *  (checkpointing off or rollback budget exhausted). */
    uint64_t unrecovered = 0;

    // --- Permanent-fault / graceful-degradation counters ---
    /** Codeword accesses landing on permanently failed banks (fail
     *  deterministically on every attempt and generation). */
    uint64_t permanentFaultyWords = 0;
    /** Lane multiplies routed through permanently broken lanes. */
    uint64_t permanentLaneFaults = 0;
    /** Detected-error events fed to the health monitor. */
    uint64_t healthErrorEvents = 0;
    /** Banks / lanes quarantined by the health monitor this run. */
    uint64_t quarantinedBanks = 0;
    uint64_t quarantinedLanes = 0;
    /** Quarantine + remap + replay migrations (do not consume the
     *  rollback budget: the fault is removed, not retried). */
    uint64_t migrations = 0;
    /** gpuFallbacks split by cause; the three always sum to
     *  gpuFallbacks. retry_exhausted: ECC retries and rollback budget
     *  both spent. uncheckpointed: no checkpoint to replay from.
     *  capacity_floor: quarantine pushed healthy-bank capacity under
     *  ResilienceConfig::health.minCapacityFraction (or the degraded
     *  plan no longer fits), so PIM offload was abandoned. */
    uint64_t gpuFallbacksRetryExhausted = 0;
    uint64_t gpuFallbacksUncheckpointed = 0;
    uint64_t gpuFallbacksCapacityFloor = 0;
};

struct RunResult {
    double totalNs = 0.0;
    double energyPj = 0.0;
    /** Seconds by paper breakdown category (ElementWise / (I)NTT /
     *  BConv / Automorphism), PIM time listed under "PIM". */
    std::map<std::string, double> timeNsByCategory;
    double gpuDramBytes = 0.0;
    double pimInternalBytes = 0.0;
    ResilienceStats resilience;
    /** Healthy-bank fraction the run ended with (1.0 = no
     *  quarantine). */
    double pimCapacityFraction = 1.0;
    /** True when quarantine drove capacity under the configured floor
     *  and remaining PIM segments were redirected to the GPU. */
    bool pimOffline = false;
    std::vector<GanttEntry> timeline;

    double totalSeconds() const { return totalNs * 1e-9; }
    double energyJoules() const { return energyPj * 1e-12; }
    double edp() const { return totalSeconds() * energyJoules(); }
};

class AnaheimFramework
{
  public:
    explicit AnaheimFramework(const AnaheimConfig &config);

    const AnaheimConfig &config() const { return config_; }

    /** Execute a trace and return time/energy/traffic. Equivalent to
     *  stepping a RunContext to completion (runcontext.h); the serving
     *  scheduler interleaves several contexts instead. */
    RunResult execute(const OpSequence &seq) const;

  private:
    /** Map an element-wise kernel type onto its PIM opcode. */
    static PimOpcode opcodeFor(KernelType type);

    /** Per-run device state lives in RunContext, which replays the
     *  schedule against this framework's models. */
    friend class RunContext;

    AnaheimConfig config_;
    GpuModel gpu_;
    PimKernelModel pim_;
};

} // namespace anaheim

#endif // ANAHEIM_ANAHEIM_FRAMEWORK_H

/**
 * @file
 * The Anaheim execution framework (§V): takes a kernel trace, decides
 * which kernels run on the GPU and which are offloaded to PIM, inserts
 * the coherence write-backs of §V-C, and plays the schedule out on a
 * single stream (GPU and PIM kernels never overlap, §V-C "no
 * pipelining") against the GPU roofline and the PIM/DRAM simulator.
 */

#ifndef ANAHEIM_ANAHEIM_FRAMEWORK_H
#define ANAHEIM_ANAHEIM_FRAMEWORK_H

#include <map>
#include <string>
#include <vector>

#include "gpu/gpumodel.h"
#include "pim/kernelmodel.h"
#include "sim/fault.h"
#include "trace/kernel.h"

namespace anaheim {

struct FusionFlags {
    /** PAccum/CAccum formation — applied by the trace builders. */
    bool basicFuse = true;
    /** GPU-side producer-consumer fusion of element-wise chains
     *  (ModDown fusion of [38] and friends). */
    bool extraFuse = true;
    /** Automorphism fused into accumulation — applied by builders. */
    bool autFuse = true;
};

/**
 * Reliability knobs for the PIM datapath (§VI-A operand reads ride raw
 * DRAM arrays). With ber == 0 the resilience machinery is bypassed
 * entirely and execution is bitwise identical to the fault-free model.
 */
struct ResilienceConfig {
    /** Raw per-bit error probability per PIM codeword read. */
    double ber = 0.0;
    /** Fault-site seed; identical seeds reproduce identical runs. */
    uint64_t faultSeed = 0x0ddfa117u;
    /** On-die SEC-DED (39,32) at the PIM word-read boundary. Without
     *  it, faults go undetected (no retry/fallback, silent errors). */
    bool eccEnabled = true;
    /** Replays of a PIM segment after a detected-uncorrectable ECC
     *  event before giving up and falling back to the GPU. */
    size_t maxPimRetries = 2;
};

struct AnaheimConfig {
    GpuConfig gpu;
    LibraryProfile library;
    DramConfig dram;
    PimConfig pim;
    bool pimEnabled = true;
    FusionFlags fusion;
    ResilienceConfig resilience;

    /** A100 80GB with near-bank PIM (Table III column 1). */
    static AnaheimConfig a100NearBank();
    /** A100 80GB with custom-HBM PIM (column 2). */
    static AnaheimConfig a100CustomHbm();
    /** RTX 4090 with near-bank PIM (column 3). */
    static AnaheimConfig rtx4090NearBank();
};

struct GanttEntry {
    std::string phase;
    std::string device; ///< "GPU" or "PIM"
    KernelClass cls;
    double startNs = 0.0;
    double endNs = 0.0;
};

/** Fault/ECC/recovery counters accumulated over one execution. */
struct ResilienceStats {
    /** PIM codeword reads with >= 1 flipped bit. */
    uint64_t faultyWords = 0;
    /** Single-bit upsets repaired by SEC-DED (data exact). */
    uint64_t eccCorrected = 0;
    /** Detected-uncorrectable (double-bit) ECC events. */
    uint64_t eccUncorrectable = 0;
    /** Corrupt words delivered as clean (all faults with ECC off). */
    uint64_t silentErrors = 0;
    /** PIM segment replays triggered by uncorrectable events. */
    uint64_t pimRetries = 0;
    /** PIM segments abandoned to the GPU after retries ran out. */
    uint64_t gpuFallbacks = 0;
};

struct RunResult {
    double totalNs = 0.0;
    double energyPj = 0.0;
    /** Seconds by paper breakdown category (ElementWise / (I)NTT /
     *  BConv / Automorphism), PIM time listed under "PIM". */
    std::map<std::string, double> timeNsByCategory;
    double gpuDramBytes = 0.0;
    double pimInternalBytes = 0.0;
    ResilienceStats resilience;
    std::vector<GanttEntry> timeline;

    double totalSeconds() const { return totalNs * 1e-9; }
    double energyJoules() const { return energyPj * 1e-12; }
    double edp() const { return totalSeconds() * energyJoules(); }
};

class AnaheimFramework
{
  public:
    explicit AnaheimFramework(const AnaheimConfig &config);

    const AnaheimConfig &config() const { return config_; }

    /** Execute a trace and return time/energy/traffic. */
    RunResult execute(const OpSequence &seq) const;

  private:
    /** Map an element-wise kernel type onto its PIM opcode. */
    static PimOpcode opcodeFor(KernelType type);

    AnaheimConfig config_;
    GpuModel gpu_;
    PimKernelModel pim_;
};

} // namespace anaheim

#endif // ANAHEIM_ANAHEIM_FRAMEWORK_H

/**
 * @file
 * The six FHE CKKS workloads of the paper's evaluation (§VII-A),
 * expressed as kernel traces: Boot, HELR, Sort, RNN, ResNet20 and
 * ResNet18-AESPA. Each trace composes bootstrapping invocations with
 * the workload's own linear transforms, multiplications and rotations;
 * the structure (op mix and counts) follows the cited implementations,
 * with synthetic weights (see the substitution table in DESIGN.md).
 */

#ifndef ANAHEIM_ANAHEIM_WORKLOADS_H
#define ANAHEIM_ANAHEIM_WORKLOADS_H

#include <vector>

#include "trace/builders.h"

namespace anaheim {

struct WorkloadInfo {
    const char *name;
    /** The paper's L_eff for the workload (§VII-A). */
    double levelsEff;
};

/** Full-slot bootstrapping (L: 2 -> 54 -> 24, L_eff = 11). */
OpSequence makeBootWorkload(const TraceParams &params = {},
                            double fftIter = 3.5);

/** HELR [33]: one training iteration on a 1024-batch of 14x14 MNIST.
 *  Bootstrapping only refreshes 196 weights, so ModSwitch dominates. */
OpSequence makeHelrWorkload(const TraceParams &params = {});

/** Sort [35]: two-way sorting of 2^14 values. */
OpSequence makeSortWorkload(const TraceParams &params = {});

/** RNN [67]: 200 evaluations of an RNN cell on 32x128 embeddings. */
OpSequence makeRnnWorkload(const TraceParams &params = {});

/** ResNet20 [49] CIFAR-10 inference. */
OpSequence makeResNet20Workload(const TraceParams &params = {});

/** ResNet18-AESPA [37] ImageNet inference. */
OpSequence makeResNet18AespaWorkload(const TraceParams &params = {});

/** All six workloads in the paper's order. */
std::vector<std::pair<WorkloadInfo, OpSequence>> makeAllWorkloads(
    const TraceParams &params = {});

} // namespace anaheim

#endif // ANAHEIM_ANAHEIM_WORKLOADS_H

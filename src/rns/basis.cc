#include "basis.h"

#include <cmath>

#include "common/logging.h"

namespace anaheim {

RnsBasis::RnsBasis(std::vector<uint64_t> primes, size_t n)
    : primes_(std::move(primes)), n_(n)
{
    tables_.reserve(primes_.size());
    // Tables come from the process-wide (q, n) cache: contexts, tests
    // and benches rebuild bases over the same primes constantly, and a
    // table build (root search + twiddles + eval-exponent probing) is
    // far more expensive than a map lookup.
    for (uint64_t q : primes_)
        tables_.push_back(NttTable::shared(q, n));
}

RnsBasis
RnsBasis::slice(size_t first, size_t count) const
{
    ANAHEIM_ASSERT(first + count <= primes_.size(), "slice out of range");
    RnsBasis sub;
    sub.n_ = n_;
    sub.primes_.assign(primes_.begin() + first,
                       primes_.begin() + first + count);
    sub.tables_.assign(tables_.begin() + first,
                       tables_.begin() + first + count);
    return sub;
}

RnsBasis
RnsBasis::concat(const RnsBasis &other) const
{
    ANAHEIM_ASSERT(n_ == other.n_, "cannot concat bases of different N");
    RnsBasis joined;
    joined.n_ = n_;
    joined.primes_ = primes_;
    joined.primes_.insert(joined.primes_.end(), other.primes_.begin(),
                          other.primes_.end());
    joined.tables_ = tables_;
    joined.tables_.insert(joined.tables_.end(), other.tables_.begin(),
                          other.tables_.end());
    return joined;
}

double
RnsBasis::logProduct() const
{
    double sum = 0.0;
    for (uint64_t q : primes_)
        sum += std::log2(static_cast<double>(q));
    return sum;
}

} // namespace anaheim

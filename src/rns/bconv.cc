#include "bconv.h"

#include "common/logging.h"
#include "common/status.h"
#include "common/parallel.h"
#include "math/kernels.h"
#include "math/modarith.h"

namespace anaheim {

BasisConverter::BasisConverter(const RnsBasis &source, const RnsBasis &target)
    : source_(source), target_(target)
{
    const size_t ls = source_.size();
    const size_t lt = target_.size();
    ANAHEIM_CHECK(ls > 0 && lt > 0, InvalidArgument,
                  "empty basis in BConv");

    qHatInv_.resize(ls);
    qHatModP_.assign(ls, std::vector<ShoupMul>(lt));
    for (size_t i = 0; i < ls; ++i) {
        const uint64_t qi = source_.prime(i);
        // qHat_i = prod_{k != i} q_k, computed mod q_i and mod each p_j.
        // Both factors are broadcast against whole limbs at convert
        // time, so each is stored with its Shoup companion.
        uint64_t hatModQi = 1;
        for (size_t k = 0; k < ls; ++k) {
            if (k != i)
                hatModQi = mulMod(hatModQi, source_.prime(k) % qi, qi);
        }
        qHatInv_[i] = ShoupMul(invMod(hatModQi, qi), qi);
        for (size_t j = 0; j < lt; ++j) {
            const uint64_t pj = target_.prime(j);
            uint64_t hatModPj = 1;
            for (size_t k = 0; k < ls; ++k) {
                if (k != i)
                    hatModPj = mulMod(hatModPj, source_.prime(k) % pj, pj);
            }
            qHatModP_[i][j] = ShoupMul(hatModPj, pj);
        }
    }
}

std::vector<CoeffVector>
BasisConverter::convert(
    const std::vector<CoeffVector> &input) const
{
    const size_t ls = source_.size();
    const size_t lt = target_.size();
    ANAHEIM_CHECK(input.size() == ls, InvalidArgument,
                  "BConv limb count mismatch: got ", input.size(),
                  ", source basis has ", ls);
    const size_t n = input[0].size();
    ANAHEIM_CHECK(n > 0, InvalidArgument,
                  "BConv input has zero-length limbs");
    // A ragged input (limb i shorter than limb 0) would read out of
    // bounds in stage 2; validate every limb length up front.
    for (size_t i = 1; i < ls; ++i) {
        ANAHEIM_CHECK(input[i].size() == n, InvalidArgument,
                      "BConv ragged input: limb ", i, " has ",
                      input[i].size(), " coefficients, expected ", n);
    }

    // Stage 1: y_i = a_i * qHatInv_i mod q_i. Source limbs are
    // independent — one task per limb.
    const kernels::KernelOps &ops = kernels::active();
    std::vector<CoeffVector> scaled(ls);
    parallelFor(0, ls, [&](size_t i) {
        const ShoupMul &factor = qHatInv_[i];
        scaled[i].resize(n);
        ops.mulShoup(scaled[i].data(), input[i].data(), n,
                     factor.operand(), factor.precon(),
                     source_.prime(i));
    });

    // Stage 2: out_j = sum_i y_i * (qHat_i mod p_j) mod p_j. Target
    // limbs are independent; the i-accumulation order within each limb
    // is unchanged, keeping results bitwise identical to serial.
    std::vector<CoeffVector> output(lt);
    parallelFor(0, lt, [&](size_t j) {
        const uint64_t pj = target_.prime(j);
        output[j].assign(n, 0);
        for (size_t i = 0; i < ls; ++i) {
            const ShoupMul &factor = qHatModP_[i][j];
            ops.mulShoupAcc(output[j].data(), scaled[i].data(), n,
                            factor.operand(), factor.precon(), pj);
        }
    });
    return output;
}

std::vector<uint64_t>
BasisConverter::convertScalar(const std::vector<uint64_t> &residues) const
{
    // Direct scalar path: same two stages as convert() against the
    // precomputed tables, but without materializing per-limb vectors —
    // key generation calls this in a loop, so the old
    // one-element-vector round trip was ls + lt + 2 allocations per
    // call. The result vector is the only allocation left.
    const size_t ls = source_.size();
    const size_t lt = target_.size();
    ANAHEIM_ASSERT(residues.size() == ls,
                   "BConv scalar residue count mismatch: got ",
                   residues.size(), ", source basis has ", ls);
    std::vector<uint64_t> result(lt);
    for (size_t j = 0; j < lt; ++j) {
        const uint64_t pj = target_.prime(j);
        uint64_t acc = 0;
        for (size_t i = 0; i < ls; ++i) {
            const uint64_t scaled =
                qHatInv_[i].mul(residues[i], source_.prime(i));
            acc = addMod(acc, qHatModP_[i][j].mul(scaled, pj), pj);
        }
        result[j] = acc;
    }
    return result;
}

} // namespace anaheim

#include "bconv.h"

#include "common/logging.h"
#include "math/modarith.h"

namespace anaheim {

BasisConverter::BasisConverter(const RnsBasis &source, const RnsBasis &target)
    : source_(source), target_(target)
{
    const size_t ls = source_.size();
    const size_t lt = target_.size();
    ANAHEIM_ASSERT(ls > 0 && lt > 0, "empty basis in BConv");

    qHatInv_.resize(ls);
    qHatModP_.assign(ls, std::vector<uint64_t>(lt));
    for (size_t i = 0; i < ls; ++i) {
        const uint64_t qi = source_.prime(i);
        // qHat_i = prod_{k != i} q_k, computed mod q_i and mod each p_j.
        uint64_t hatModQi = 1;
        for (size_t k = 0; k < ls; ++k) {
            if (k != i)
                hatModQi = mulMod(hatModQi, source_.prime(k) % qi, qi);
        }
        qHatInv_[i] = invMod(hatModQi, qi);
        for (size_t j = 0; j < lt; ++j) {
            const uint64_t pj = target_.prime(j);
            uint64_t hatModPj = 1;
            for (size_t k = 0; k < ls; ++k) {
                if (k != i)
                    hatModPj = mulMod(hatModPj, source_.prime(k) % pj, pj);
            }
            qHatModP_[i][j] = hatModPj;
        }
    }
}

std::vector<std::vector<uint64_t>>
BasisConverter::convert(
    const std::vector<std::vector<uint64_t>> &input) const
{
    const size_t ls = source_.size();
    const size_t lt = target_.size();
    ANAHEIM_ASSERT(input.size() == ls, "BConv limb count mismatch");
    const size_t n = input[0].size();

    // Stage 1: y_i = a_i * qHatInv_i mod q_i.
    std::vector<std::vector<uint64_t>> scaled(ls);
    for (size_t i = 0; i < ls; ++i) {
        const uint64_t qi = source_.prime(i);
        scaled[i].resize(n);
        for (size_t c = 0; c < n; ++c)
            scaled[i][c] = mulMod(input[i][c], qHatInv_[i], qi);
    }

    // Stage 2: out_j = sum_i y_i * (qHat_i mod p_j) mod p_j.
    std::vector<std::vector<uint64_t>> output(lt);
    for (size_t j = 0; j < lt; ++j) {
        const uint64_t pj = target_.prime(j);
        const Barrett barrett(pj);
        output[j].assign(n, 0);
        for (size_t i = 0; i < ls; ++i) {
            const uint64_t factor = qHatModP_[i][j];
            for (size_t c = 0; c < n; ++c) {
                output[j][c] = addMod(
                    output[j][c], barrett.mulMod(scaled[i][c], factor), pj);
            }
        }
    }
    return output;
}

std::vector<uint64_t>
BasisConverter::convertScalar(const std::vector<uint64_t> &residues) const
{
    std::vector<std::vector<uint64_t>> input(residues.size());
    for (size_t i = 0; i < residues.size(); ++i)
        input[i] = {residues[i]};
    const auto out = convert(input);
    std::vector<uint64_t> result(out.size());
    for (size_t j = 0; j < out.size(); ++j)
        result[j] = out[j][0];
    return result;
}

} // namespace anaheim

/**
 * @file
 * Residue number system (RNS) basis: an ordered set of NTT-friendly
 * primes together with their shared ring degree and per-prime NTT tables.
 *
 * With RNS, a polynomial in R_Q is represented as L limbs, where limb i
 * holds the coefficients mod Q_i (§II-A of the paper). All higher layers
 * (poly, ckks) reference limbs through an RnsBasis.
 */

#ifndef ANAHEIM_RNS_BASIS_H
#define ANAHEIM_RNS_BASIS_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "math/ntt.h"

namespace anaheim {

/**
 * Immutable prime basis shared by polynomials.
 *
 * Construction precomputes one NttTable per prime, which is the dominant
 * setup cost; contexts therefore build a single full basis and hand out
 * sub-bases (prime subsets) that share the tables.
 */
class RnsBasis
{
  public:
    RnsBasis() = default;

    /** Build a basis and its NTT tables from scratch. */
    RnsBasis(std::vector<uint64_t> primes, size_t n);

    size_t size() const { return primes_.size(); }
    size_t degree() const { return n_; }
    uint64_t prime(size_t i) const { return primes_[i]; }
    const std::vector<uint64_t> &primes() const { return primes_; }
    const NttTable &table(size_t i) const { return *tables_[i]; }
    std::shared_ptr<const NttTable> tablePtr(size_t i) const
    {
        return tables_[i];
    }

    /** Sub-basis consisting of primes [first, first + count), sharing
     *  NTT tables with this basis. */
    RnsBasis slice(size_t first, size_t count) const;

    /** Concatenation of this basis with another (same degree). */
    RnsBasis concat(const RnsBasis &other) const;

    /** log2 of the basis product, for security accounting. */
    double logProduct() const;

  private:
    std::vector<uint64_t> primes_;
    std::vector<std::shared_ptr<const NttTable>> tables_;
    size_t n_ = 0;
};

} // namespace anaheim

#endif // ANAHEIM_RNS_BASIS_H

/**
 * @file
 * Fast RNS basis conversion (BConv, §II-B of the paper).
 *
 * Given the residues of a value in a source basis {q_0..q_{L-1}}, produce
 * its residues in a disjoint target basis {p_0..p_{A-1}} without leaving
 * RNS. This is the standard "fast/approximate" conversion of full-RNS
 * CKKS: the result may carry an additive e*Q overflow with 0 <= e < L,
 * which downstream CKKS noise analysis absorbs.
 *
 * Computationally this is the alpha x L constant matrix multiplied by an
 * L x N coefficient matrix — exactly the op the paper's BConv kernels
 * model.
 */

#ifndef ANAHEIM_RNS_BCONV_H
#define ANAHEIM_RNS_BCONV_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"

#include "basis.h"
#include "math/modarith.h"

namespace anaheim {

/**
 * Precomputed converter from one basis to another.
 *
 * Inputs must be in coefficient (non-NTT) domain; conversion is
 * coefficient-wise.
 */
class BasisConverter
{
  public:
    BasisConverter(const RnsBasis &source, const RnsBasis &target);

    const RnsBasis &source() const { return source_; }
    const RnsBasis &target() const { return target_; }

    /**
     * Convert limb-major data: input[i] holds N residues mod source
     * prime i; returns target.size() limbs of N residues.
     */
    std::vector<CoeffVector> convert(
        const std::vector<CoeffVector> &input) const;

    /** Scalar conversion (used by tests and key generation). */
    std::vector<uint64_t> convertScalar(
        const std::vector<uint64_t> &residues) const;

  private:
    RnsBasis source_;
    RnsBasis target_;
    /** (Q/q_i)^-1 mod q_i for each source prime, Shoup-prepared: the
     *  stage-1 scaling is a broadcast of a fixed constant per limb. */
    std::vector<ShoupMul> qHatInv_;
    /** (Q/q_i) mod p_j, indexed [i][j], Shoup-prepared against p_j for
     *  the stage-2 inner product. */
    std::vector<std::vector<ShoupMul>> qHatModP_;
};

} // namespace anaheim

#endif // ANAHEIM_RNS_BCONV_H

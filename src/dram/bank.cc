#include "bank.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/fault.h"

namespace anaheim {

void
BankEngine::attachFaultModel(const FaultModel *model,
                             size_t residentWords)
{
    faultModel_ = model;
    residentWords_ = residentWords;
}

uint64_t
BankEngine::scrub()
{
    retention_.pendingCorrectable = 0;
    const uint64_t surfaced = retention_.pendingUncorrectable;
    retention_.pendingUncorrectable = 0;
    return surfaced;
}

int64_t
BankEngine::applyRefresh(int64_t cycle)
{
    if (nextRefresh_ == 0)
        nextRefresh_ = timing_.tREFI;
    while (cycle >= nextRefresh_) {
        // The bank is unavailable for tRFC around each refresh window.
        cycle = std::max(cycle, nextRefresh_) + timing_.tRFC;
        nextRefresh_ += timing_.tREFI;
        ++refreshes_;
        if (faultModel_ != nullptr && residentWords_ > 0) {
            // Cells that decayed during this window are refreshed in
            // their corrupted state: the damage persists until an ECC
            // scrub pass visits them (or the data is overwritten).
            ++retention_.windows;
            const FaultEventCounts decay = faultModel_->sampleRetention(
                refreshes_, residentWords_);
            retention_.faultyWords += decay.faulty;
            retention_.singleBit += decay.singleBit;
            retention_.multiBit += decay.multiBit;
            retention_.pendingCorrectable += decay.singleBit;
            retention_.pendingUncorrectable += decay.multiBit;
        }
    }
    return cycle;
}

int64_t
BankEngine::issue(DramCommand command)
{
    int64_t earliest = applyRefresh(busyUntil_);
    switch (command) {
      case DramCommand::Act:
        ANAHEIM_ASSERT(!rowOpen_, "ACT on an open row");
        earliest = std::max(earliest, lastPre_ + timing_.tRP);
        lastAct_ = earliest;
        rowOpen_ = true;
        ++counts_.acts;
        busyUntil_ = earliest;
        break;
      case DramCommand::Rd:
        ANAHEIM_ASSERT(rowOpen_, "RD on a precharged bank");
        earliest = std::max(earliest, lastAct_ + timing_.tRCD);
        earliest = std::max(earliest, lastRead_ + timing_.tCCD);
        earliest = std::max(earliest, lastWrite_ + timing_.tWTR);
        lastRead_ = earliest;
        ++counts_.reads;
        // Data occupies the bank datapath for tCCD.
        busyUntil_ = earliest + timing_.tCCD;
        break;
      case DramCommand::Wr:
        ANAHEIM_ASSERT(rowOpen_, "WR on a precharged bank");
        earliest = std::max(earliest, lastAct_ + timing_.tRCD);
        earliest = std::max(earliest, lastWrite_ + timing_.tCCD);
        lastWrite_ = earliest;
        ++counts_.writes;
        busyUntil_ = earliest + timing_.tCCD;
        break;
      case DramCommand::Pre:
        ANAHEIM_ASSERT(rowOpen_, "PRE on a precharged bank");
        earliest = std::max(earliest, lastAct_ + timing_.tRAS);
        earliest = std::max(earliest, lastRead_ + timing_.tRTP);
        earliest = std::max(earliest, lastWrite_ + timing_.tWR);
        lastPre_ = earliest;
        rowOpen_ = false;
        ++counts_.pres;
        busyUntil_ = earliest;
        break;
    }
    return earliest;
}

int64_t
BankEngine::activateRow()
{
    if (rowOpen_)
        issue(DramCommand::Pre);
    return issue(DramCommand::Act);
}

} // namespace anaheim

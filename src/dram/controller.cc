#include "controller.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace anaheim {

DramRequest
mapAddress(const DramConfig &config, uint64_t byteAddress, bool isWrite)
{
    DramRequest request;
    request.isWrite = isWrite;
    const uint64_t chunk = byteAddress / config.chunkBytes;
    request.column = chunk % config.chunksPerRow();
    const uint64_t rowFlat = chunk / config.chunksPerRow();
    request.bank = rowFlat % config.banksPerDie;
    request.row = rowFlat / config.banksPerDie;
    return request;
}

MemoryController::MemoryController(const DramConfig &config, size_t banks)
    : config_(config)
{
    banks_.reserve(banks);
    for (size_t i = 0; i < banks; ++i)
        banks_.emplace_back(config.timing);
}

void
MemoryController::enqueue(const DramRequest &request)
{
    ANAHEIM_ASSERT(request.bank < banks_.size(), "bank out of range");
    queue_.push_back(request);
}

double
MemoryController::drain()
{
    OBS_SPAN("dram/drain");
    // FR-FCFS per bank: serve the oldest row-hit first; otherwise the
    // oldest request. Banks proceed independently (bank-level
    // parallelism); the result is the max over banks.
    while (!queue_.empty()) {
        size_t chosen = 0;
        bool foundHit = false;
        for (size_t i = 0; i < queue_.size(); ++i) {
            auto &bank = banks_[queue_[i].bank];
            if (bank.rowValid && bank.openRow == queue_[i].row) {
                chosen = i;
                foundHit = true;
                break;
            }
        }
        if (!foundHit)
            chosen = 0;

        const DramRequest request = queue_[chosen];
        queue_.erase(queue_.begin() + chosen);
        auto &bank = banks_[request.bank];
        ++accesses_;
        if (bank.rowValid && bank.openRow == request.row) {
            ++hits_;
        } else {
            bank.engine.activateRow();
            bank.rowValid = true;
            bank.openRow = request.row;
        }
        bank.engine.issue(request.isWrite ? DramCommand::Wr
                                          : DramCommand::Rd);
    }

    double maxNs = 0.0;
    totals_ = CommandCounts{};
    for (auto &bank : banks_) {
        maxNs = std::max(maxNs, bank.engine.elapsedNs());
        totals_.acts += bank.engine.counts().acts;
        totals_.reads += bank.engine.counts().reads;
        totals_.writes += bank.engine.counts().writes;
        totals_.pres += bank.engine.counts().pres;
    }

    static obs::Counter &acts =
        obs::MetricsRegistry::global().counter("dram.row_activations");
    static obs::Counter &reads =
        obs::MetricsRegistry::global().counter("dram.reads");
    static obs::Counter &writes =
        obs::MetricsRegistry::global().counter("dram.writes");
    static obs::Counter &drains =
        obs::MetricsRegistry::global().counter("dram.drains");
    acts.add(totals_.acts);
    reads.add(totals_.reads);
    writes.add(totals_.writes);
    drains.add();
    return maxNs;
}

double
MemoryController::rowHitRate() const
{
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(accesses_);
}

} // namespace anaheim

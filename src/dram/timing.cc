#include "timing.h"

namespace anaheim {

DramConfig
DramConfig::hbm2A100()
{
    DramConfig config;
    config.name = "HBM2-A100";
    config.dies = 40; // 5 stacks x 8-Hi
    config.banksPerDie = 64;
    config.rowBytes = 1024;
    config.chunkBytes = 32;
    config.externalBwGBs = 1802.0;
    config.capacityBytes = 80e9;
    // HBM2e @ ~1.5 GHz command clock.
    config.timing.tCkNs = 0.66;
    config.timing.tRCD = 21;
    config.timing.tRP = 21;
    config.timing.tRAS = 50;
    config.timing.tCL = 21;
    config.timing.tCCD = 2;
    config.timing.tWR = 24;
    config.timing.tRTP = 8;
    config.timing.tWTR = 12;
    return config;
}

DramConfig
DramConfig::gddr6xRtx4090()
{
    DramConfig config;
    config.name = "GDDR6X-RTX4090";
    config.dies = 12;
    config.banksPerDie = 32;
    config.rowBytes = 1024;
    config.chunkBytes = 32;
    config.externalBwGBs = 939.0;
    config.capacityBytes = 24e9;
    // GDDR6X @ ~1.31 GHz command clock; longer relative row timings and
    // a costlier off-chip interface than HBM.
    config.timing.tCkNs = 0.76;
    config.timing.tRCD = 24;
    config.timing.tRP = 24;
    config.timing.tRAS = 52;
    config.timing.tCL = 24;
    config.timing.tCCD = 2;
    config.timing.tWR = 28;
    config.timing.tRTP = 8;
    config.timing.tWTR = 12;
    config.energy.actPrePj = 1100.0;
    config.energy.nearBankPerBytePj = 2.2;
    config.energy.globalIoPerBytePj = 9.0;
    config.energy.externalPerBytePj = 58.0; // off-package GDDR PHY
    return config;
}

} // namespace anaheim

/**
 * @file
 * Command-level DRAM bank timing model (Ramulator-2.0-style [57]):
 * ACT / RD / WR / PRE with the inter-command constraints of timing.h
 * enforced as earliest-issue times. During all-bank PIM execution every
 * bank follows the same schedule (§VI), so one BankEngine models the
 * whole device.
 */

#ifndef ANAHEIM_DRAM_BANK_H
#define ANAHEIM_DRAM_BANK_H

#include <cstdint>

#include "timing.h"

namespace anaheim {

enum class DramCommand { Act, Rd, Wr, Pre };

/** Aggregate command counts (for energy accounting). */
struct CommandCounts {
    uint64_t acts = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t pres = 0;
};

class BankEngine
{
  public:
    explicit BankEngine(const DramTiming &timing) : timing_(timing) {}

    /**
     * Issue a command at the earliest legal cycle and return that
     * cycle. Violations are impossible by construction; issuing RD/WR
     * on a precharged bank or ACT on an open bank panics.
     */
    int64_t issue(DramCommand command);

    /** Open a row: PRE (if a row is open) followed by ACT. */
    int64_t activateRow();

    /** Current simulated time in cycles (end of last data burst). */
    int64_t cycle() const { return busyUntil_; }
    double elapsedNs() const
    {
        return static_cast<double>(busyUntil_) * timing_.tCkNs;
    }

    bool rowOpen() const { return rowOpen_; }
    const CommandCounts &counts() const { return counts_; }
    uint64_t refreshes() const { return refreshes_; }

  private:
    /** Stall for any pending auto-refresh windows before `cycle`. The
     *  model charges tRFC per elapsed tREFI (simplified all-bank
     *  refresh; rows are restored afterwards). */
    int64_t applyRefresh(int64_t cycle);

    DramTiming timing_;
    bool rowOpen_ = false;
    int64_t lastAct_ = -1000000;
    int64_t lastPre_ = -1000000;
    int64_t lastRead_ = -1000000;
    int64_t lastWrite_ = -1000000;
    /** Data-bus / command availability horizon. */
    int64_t busyUntil_ = 0;
    int64_t nextRefresh_ = 0;
    uint64_t refreshes_ = 0;
    CommandCounts counts_;
};

} // namespace anaheim

#endif // ANAHEIM_DRAM_BANK_H

/**
 * @file
 * Command-level DRAM bank timing model (Ramulator-2.0-style [57]):
 * ACT / RD / WR / PRE with the inter-command constraints of timing.h
 * enforced as earliest-issue times. During all-bank PIM execution every
 * bank follows the same schedule (§VI), so one BankEngine models the
 * whole device.
 *
 * The engine can additionally model cell *retention* decay: with a
 * FaultModel attached, every elapsed refresh window draws how many of
 * the bank's resident codewords decayed (FaultModel::sampleRetention,
 * deterministic per window index). Single-bit decays are repairable by
 * an ECC scrub pass (scrub()); multi-bit decays are uncorrectable data
 * loss that stays pending until a scrub surfaces it.
 */

#ifndef ANAHEIM_DRAM_BANK_H
#define ANAHEIM_DRAM_BANK_H

#include <cstddef>
#include <cstdint>

#include "timing.h"

namespace anaheim {

class FaultModel;

enum class DramCommand { Act, Rd, Wr, Pre };

/** Aggregate command counts (for energy accounting). */
struct CommandCounts {
    uint64_t acts = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t pres = 0;
};

/** Retention-decay accounting per BankEngine. */
struct RetentionCounters {
    uint64_t windows = 0;     ///< refresh windows sampled
    uint64_t faultyWords = 0; ///< decayed codewords, all classes
    uint64_t singleBit = 0;   ///< scrub-correctable decays
    uint64_t multiBit = 0;    ///< uncorrectable decays (data loss)
    /** Correctable decays accumulated since the last scrub pass. */
    uint64_t pendingCorrectable = 0;
    /** Uncorrectable decays not yet surfaced by a scrub pass. */
    uint64_t pendingUncorrectable = 0;
};

class BankEngine
{
  public:
    explicit BankEngine(const DramTiming &timing) : timing_(timing) {}

    /**
     * Issue a command at the earliest legal cycle and return that
     * cycle. Violations are impossible by construction; issuing RD/WR
     * on a precharged bank or ACT on an open bank panics.
     */
    int64_t issue(DramCommand command);

    /** Open a row: PRE (if a row is open) followed by ACT. */
    int64_t activateRow();

    /** Current simulated time in cycles (end of last data burst). */
    int64_t cycle() const { return busyUntil_; }
    double elapsedNs() const
    {
        return static_cast<double>(busyUntil_) * timing_.tCkNs;
    }

    bool rowOpen() const { return rowOpen_; }
    const CommandCounts &counts() const { return counts_; }
    uint64_t refreshes() const { return refreshes_; }

    /**
     * Track retention decay over `residentWords` stored codewords:
     * each refresh window crossed from now on draws decay events from
     * `model` (non-owning; nullptr detaches). Passing the same seeded
     * model reproduces identical decay histories.
     */
    void attachFaultModel(const FaultModel *model, size_t residentWords);

    const RetentionCounters &retention() const { return retention_; }

    /**
     * ECC scrub visit: repair every pending correctable decay and
     * surface the pending uncorrectable ones. Returns the number of
     * uncorrectable decays surfaced (both pending counters reset —
     * the caller owns the recovery decision).
     */
    uint64_t scrub();

  private:
    /** Stall for any pending auto-refresh windows before `cycle`. The
     *  model charges tRFC per elapsed tREFI (simplified all-bank
     *  refresh; rows are restored afterwards). Each crossed window
     *  also samples retention decay when a fault model is attached. */
    int64_t applyRefresh(int64_t cycle);

    DramTiming timing_;
    bool rowOpen_ = false;
    int64_t lastAct_ = -1000000;
    int64_t lastPre_ = -1000000;
    int64_t lastRead_ = -1000000;
    int64_t lastWrite_ = -1000000;
    /** Data-bus / command availability horizon. */
    int64_t busyUntil_ = 0;
    int64_t nextRefresh_ = 0;
    uint64_t refreshes_ = 0;
    CommandCounts counts_;
    const FaultModel *faultModel_ = nullptr;
    size_t residentWords_ = 0;
    RetentionCounters retention_;
};

} // namespace anaheim

#endif // ANAHEIM_DRAM_BANK_H

/**
 * @file
 * DRAM device descriptions: timing parameters, geometry and energy
 * coefficients for the HBM2 (A100 80GB) and GDDR6X (RTX 4090)
 * configurations of Table III.
 */

#ifndef ANAHEIM_DRAM_TIMING_H
#define ANAHEIM_DRAM_TIMING_H

#include <cstddef>
#include <string>

namespace anaheim {

/** Command-to-command timing constraints, in device clock cycles. */
struct DramTiming {
    /** Command clock period in nanoseconds. */
    double tCkNs = 1.0;
    /** ACT to column command (RAS-to-CAS). */
    int tRCD = 14;
    /** PRE to ACT (row precharge). */
    int tRP = 14;
    /** ACT to PRE (row active time). */
    int tRAS = 33;
    /** Column command to data (CAS latency). */
    int tCL = 14;
    /** Column-to-column, same bank group (burst occupancy). */
    int tCCD = 2;
    /** Write recovery before PRE. */
    int tWR = 16;
    /** Read-to-precharge. */
    int tRTP = 5;
    /** Write-to-read turnaround. */
    int tWTR = 8;
    /** Average refresh interval (all-bank refresh cadence). */
    int tREFI = 5900;
    /** Refresh cycle time (bank unavailable). */
    int tRFC = 530;
};

/** Per-command / per-byte energy coefficients (pJ), following the
 *  O'Connor et al. fine-grained DRAM energy breakdown [62]. */
struct DramEnergy {
    /** One row activate + precharge pair (whole 8Kb row), in pJ. */
    double actPrePj = 900.0;
    /** Moving one byte from the sense amps through the bank's local
     *  datapath (the only movement PIM near-bank accesses pay). */
    double nearBankPerBytePj = 2.0;
    /** Moving one byte across the die's global I/O to the die edge /
     *  TSVs (paid by custom-HBM PIM and by normal reads). */
    double globalIoPerBytePj = 8.0;
    /** Off-chip interface energy per byte (PHY + interposer/board),
     *  paid only by normal (non-PIM) accesses. */
    double externalPerBytePj = 21.0;
};

/** Geometry and derived bandwidth of one DRAM configuration. */
struct DramConfig {
    std::string name;
    /** Total DRAM dies visible to the processor. */
    size_t dies = 40;
    size_t banksPerDie = 64;
    /** Row size per bank (paper: 8Kb = 1KB rows). */
    size_t rowBytes = 1024;
    /** Column access granularity (256-bit chunks). */
    size_t chunkBytes = 32;
    /** Aggregate external bandwidth, GB/s. */
    double externalBwGBs = 1802.0;
    /** Total capacity in bytes. */
    double capacityBytes = 80e9;
    DramTiming timing;
    DramEnergy energy;

    size_t chunksPerRow() const { return rowBytes / chunkBytes; }
    size_t totalBanks() const { return dies * banksPerDie; }

    /** HBM2 stack configuration of the A100 80GB (5 stacks x 8 dies). */
    static DramConfig hbm2A100();
    /** GDDR6X configuration of the RTX 4090 (12 dies). */
    static DramConfig gddr6xRtx4090();
};

} // namespace anaheim

#endif // ANAHEIM_DRAM_TIMING_H

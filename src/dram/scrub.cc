#include "scrub.h"

#include <cmath>

#include "common/status.h"
#include "obs/metrics.h"

namespace anaheim {

ScrubEngine::ScrubEngine(const DramConfig &dram, const ScrubConfig &config)
    : dram_(dram), config_(config)
{
    ANAHEIM_CHECK(!config_.enabled || config_.intervalNs > 0.0,
                  InvalidArgument,
                  "scrub interval must be positive, got ",
                  config_.intervalNs);
}

ScrubPassStats
ScrubEngine::pass(double liveBytes) const
{
    ScrubPassStats stats;
    if (liveBytes <= 0.0)
        return stats;

    // Every bank walks its slice of the live footprint in lockstep, so
    // device time is one bank's row walk.
    const double bytesPerBank =
        liveBytes / static_cast<double>(dram_.totalBanks());
    const double rowsPerBank = std::ceil(bytesPerBank / dram_.rowBytes);
    const size_t chunksPerRow = dram_.chunksPerRow();

    const DramTiming &t = dram_.timing;
    // Per row: open (tRP + tRCD), stream every chunk through the
    // near-bank ECC logic (tCCD each; the corrected write-back of the
    // rare flipped chunk hides behind the read stream), close (tRAS
    // floor is covered by the chunk stream for 32-chunk rows).
    const double cyclesPerRow =
        t.tRP + t.tRCD +
        static_cast<double>(chunksPerRow) * static_cast<double>(t.tCCD);
    stats.timeNs = rowsPerBank * cyclesPerRow * t.tCkNs;

    // Energy scales with the *total* live footprint: every scrubbed
    // row pays an ACT/PRE pair, every byte moves through the bank's
    // local datapath only.
    const double rowsTotal = std::ceil(liveBytes / dram_.rowBytes);
    stats.energyPj = rowsTotal * dram_.energy.actPrePj +
                     liveBytes * dram_.energy.nearBankPerBytePj;
    stats.wordsScrubbed = static_cast<uint64_t>(liveBytes / 4.0);

    static obs::Counter &passes =
        obs::MetricsRegistry::global().counter("dram.scrub.passes_priced");
    static obs::Gauge &words =
        obs::MetricsRegistry::global().gauge("dram.scrub.words_per_pass");
    passes.add();
    words.set(static_cast<double>(stats.wordsScrubbed));
    return stats;
}

} // namespace anaheim

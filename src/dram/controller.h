/**
 * @file
 * A small FR-FCFS memory controller over multiple banks, used for
 * regular (non-PIM) request streams and to validate the bank timing
 * model: row hits are served before row misses, ties in FCFS order.
 */

#ifndef ANAHEIM_DRAM_CONTROLLER_H
#define ANAHEIM_DRAM_CONTROLLER_H

#include <cstdint>
#include <vector>

#include "bank.h"
#include "timing.h"

namespace anaheim {

struct DramRequest {
    bool isWrite = false;
    size_t bank = 0;
    uint64_t row = 0;
    uint64_t column = 0;
};

/** Decompose a flat byte address into bank/row/column for a die using
 *  row-interleaved mapping (consecutive rows rotate across banks). */
DramRequest mapAddress(const DramConfig &config, uint64_t byteAddress,
                       bool isWrite);

class MemoryController
{
  public:
    MemoryController(const DramConfig &config, size_t banks);

    /** Enqueue a request. */
    void enqueue(const DramRequest &request);

    /** Drain the queue with FR-FCFS scheduling; returns total ns. */
    double drain();

    const CommandCounts &counts() const { return totals_; }
    double rowHitRate() const;

  private:
    struct BankState {
        BankEngine engine;
        bool rowValid = false;
        uint64_t openRow = 0;
        explicit BankState(const DramTiming &timing) : engine(timing) {}
    };

    DramConfig config_;
    std::vector<BankState> banks_;
    std::vector<DramRequest> queue_;
    CommandCounts totals_;
    uint64_t hits_ = 0;
    uint64_t accesses_ = 0;
};

} // namespace anaheim

#endif // ANAHEIM_DRAM_CONTROLLER_H

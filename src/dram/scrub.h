/**
 * @file
 * Periodic ECC scrub modeling for the DRAM controller.
 *
 * Raw near-bank arrays accumulate retention decay between accesses; a
 * scrub pass walks the resident footprint, runs every codeword through
 * the on-die SEC-DED logic, rewrites corrected words in place, and
 * surfaces uncorrectable ones to the caller. All banks scrub their
 * share concurrently (the same all-bank lockstep PIM execution uses),
 * so a pass costs one bank's walk over its slice: per live row an
 * ACT/PRE pair plus the column stream at chunk granularity, at
 * near-bank energy — the scrub never crosses the global I/O.
 *
 * ScrubEngine only prices the pass; what a pass *finds* is tracked by
 * the BankEngine retention counters (micro level) or the framework's
 * event sampling (trace level), both fed by the same seeded
 * FaultModel.
 */

#ifndef ANAHEIM_DRAM_SCRUB_H
#define ANAHEIM_DRAM_SCRUB_H

#include <cstdint>

#include "timing.h"

namespace anaheim {

/** Knobs for the periodic scrubber (exposed via ResilienceConfig). */
struct ScrubConfig {
    bool enabled = false;
    /** Time between scrub passes over the live footprint, ns. */
    double intervalNs = 100.0e3;
};

/** Cost of one scrub pass. */
struct ScrubPassStats {
    double timeNs = 0.0;
    double energyPj = 0.0;
    uint64_t wordsScrubbed = 0;
};

class ScrubEngine
{
  public:
    ScrubEngine(const DramConfig &dram, const ScrubConfig &config);

    const ScrubConfig &config() const { return config_; }

    /**
     * Price one scrub pass over `liveBytes` of resident data spread
     * across all banks. Pure: identical inputs give identical costs.
     */
    ScrubPassStats pass(double liveBytes) const;

  private:
    DramConfig dram_;
    ScrubConfig config_;
};

} // namespace anaheim

#endif // ANAHEIM_DRAM_SCRUB_H
